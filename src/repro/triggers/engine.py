"""The PG-Trigger execution engine.

The engine implements the semantics of Section 4.2 of the paper:

* **Action times** — BEFORE and AFTER triggers run at each statement
  boundary (BEFORE first, restricted to conditioning NEW states), ONCOMMIT
  triggers run when the surrounding transaction reaches its commit point
  (their side effects are included in the same transaction, and they may
  abort it), DETACHED triggers run after a successful commit inside an
  autonomous transaction.
* **Granularity** — FOR EACH executes the trigger once per affected item
  with ``OLD``/``NEW`` bound; FOR ALL executes it once per statement with
  the plural transition variables bound to the whole affected set.
* **Ordering** — triggers sharing an action time execute in creation-time
  order (the registry's sequence numbers).
* **Cascading** — changes produced by trigger statements are collected and
  recursively processed as new events, using a stack of execution contexts
  and a configurable depth limit (the runtime counterpart of the
  termination analysis in :mod:`repro.triggers.termination`).

Conditions may be plain boolean expressions over the transition variables
(``OLD.x <> NEW.x``), EXISTS patterns, or *condition queries* — a pipeline
of MATCH/UNWIND/WITH clauses as in the paper's examples.  The rows that
survive the condition are handed to the action statement, so variables
bound in the condition (e.g. the overloaded hospital ``h``) are usable in
the action.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Iterable, Mapping, Optional

from ..cypher.ast import Query, ReturnClause
from ..cypher.errors import CypherError, CypherSyntaxError
from ..cypher.executor import QueryExecutor
from ..cypher.parser import parse_expression, parse_query
from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from ..tx.errors import TransactionAborted
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .ast import ActionTime, Granularity, InstalledTrigger, TriggerDefinition
from .context import ExecutionContext, TriggerBindings, TriggerFiring, bindings_for
from .errors import TriggerExecutionError, TriggerRecursionError
from .events import compute_activations
from .registry import TriggerRegistry

#: Maximum cascade depth before the engine assumes non-termination.
DEFAULT_MAX_CASCADE_DEPTH = 16
#: Maximum nesting of autonomous (DETACHED) transactions.
DEFAULT_MAX_DETACHED_DEPTH = 4


def _abort_procedure(args, invocation):
    """``CALL db.abort('reason')`` — abort the surrounding transaction.

    Registered in every trigger-statement executor so that ONCOMMIT
    triggers can reject the transaction, as the paper's semantics allow.
    """
    reason = str(args[0]) if args else "aborted by trigger"
    raise TransactionAborted(reason)


class TriggerEngine:
    """Evaluates installed triggers against the deltas of a transaction."""

    def __init__(
        self,
        graph: PropertyGraph,
        registry: TriggerRegistry,
        manager: TransactionManager,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = DEFAULT_MAX_CASCADE_DEPTH,
        max_detached_depth: int = DEFAULT_MAX_DETACHED_DEPTH,
    ) -> None:
        self.graph = graph
        self.registry = registry
        self.manager = manager
        self.clock = clock or _dt.datetime.now
        self.max_cascade_depth = max_cascade_depth
        self.max_detached_depth = max_detached_depth
        #: Audit log of trigger firings (cleared with :meth:`clear_firings`).
        self.firings: list[TriggerFiring] = []
        self._condition_cache: dict[str, Any] = {}
        self._statement_cache: dict[str, Query] = {}
        self._detached_depth = 0
        #: Extra procedures made available inside trigger statements.
        self.procedures = {"db.abort": _abort_procedure, "abort": _abort_procedure}

    # ------------------------------------------------------------------
    # public entry points (driven by GraphSession / TransactionManager hooks)
    # ------------------------------------------------------------------

    def run_statement_triggers(self, tx: Transaction, delta: GraphDelta) -> GraphDelta:
        """Process BEFORE and AFTER triggers for one statement's delta."""
        produced = GraphDelta()
        produced = produced.merge(
            self._process(tx, delta, (ActionTime.BEFORE,), depth=0, parent=None)
        )
        produced = produced.merge(
            self._process(tx, delta, (ActionTime.AFTER,), depth=0, parent=None)
        )
        return produced

    def run_commit_triggers(self, tx: Transaction, delta: GraphDelta) -> GraphDelta:
        """Process ONCOMMIT triggers for the whole transaction delta."""
        return self._process(tx, delta, (ActionTime.ONCOMMIT,), depth=0, parent=None)

    def run_detached_triggers(self, delta: GraphDelta) -> Optional[GraphDelta]:
        """Process DETACHED triggers in an autonomous transaction.

        Returns the delta committed by the autonomous transaction, or None
        when no DETACHED trigger had activations (no transaction is opened
        in that case).
        """
        triggers = self.registry.ordered((ActionTime.DETACHED,), enabled_only=True)
        if not triggers:
            return None
        if not any(compute_activations(t.definition, delta) for t in triggers):
            return None
        if self._detached_depth >= self.max_detached_depth:
            raise TriggerRecursionError(
                self.max_detached_depth, [t.name for t in triggers]
            )
        self._detached_depth += 1
        try:
            tx = self.manager.begin(metadata={"source": "detached-trigger"})
            try:
                self._process(tx, delta, (ActionTime.DETACHED,), depth=0, parent=None)
                committed = self.manager.commit(tx)
            except Exception:
                if tx.is_active:
                    self.manager.rollback(tx)
                raise
            return committed
        finally:
            self._detached_depth -= 1

    def clear_firings(self) -> None:
        """Reset the audit log of trigger firings."""
        self.firings.clear()

    # ------------------------------------------------------------------
    # core processing loop
    # ------------------------------------------------------------------

    def _process(
        self,
        tx: Transaction,
        delta: GraphDelta,
        times: tuple[ActionTime, ...],
        depth: int,
        parent: Optional[ExecutionContext],
    ) -> GraphDelta:
        """Run all triggers of ``times`` over ``delta``; cascade recursively."""
        if delta.is_empty():
            return GraphDelta()
        if depth > self.max_cascade_depth:
            chain = parent.chain() if parent else []
            raise TriggerRecursionError(self.max_cascade_depth, chain)

        produced_total = GraphDelta()
        for installed in self.registry.ordered(times, enabled_only=True):
            produced = self._run_trigger(installed, tx, delta, depth, parent)
            produced_total = produced_total.merge(produced)

        if not produced_total.is_empty():
            cascade_times = self._cascade_times(times)
            nested = self._process(
                tx, produced_total, cascade_times, depth + 1,
                parent or ExecutionContext("(statement)", depth, 0, Granularity.ALL),
            )
            produced_total = produced_total.merge(nested)
        return produced_total

    def _cascade_times(self, times: tuple[ActionTime, ...]) -> tuple[ActionTime, ...]:
        """Which action times participate in cascading rounds.

        Changes produced by ONCOMMIT (or DETACHED) triggers are still inside
        the same transaction (autonomous one for DETACHED), so statement-time
        triggers react to them as well; the converse does not hold.
        """
        if ActionTime.ONCOMMIT in times:
            return (ActionTime.BEFORE, ActionTime.AFTER, ActionTime.ONCOMMIT)
        if ActionTime.DETACHED in times:
            return (ActionTime.BEFORE, ActionTime.AFTER, ActionTime.DETACHED)
        return (ActionTime.BEFORE, ActionTime.AFTER)

    def _run_trigger(
        self,
        installed: InstalledTrigger,
        tx: Transaction,
        delta: GraphDelta,
        depth: int,
        parent: Optional[ExecutionContext],
    ) -> GraphDelta:
        trigger = installed.definition
        activations = compute_activations(trigger, delta)
        if not activations:
            return GraphDelta()
        context = ExecutionContext(
            trigger_name=trigger.name,
            depth=depth,
            activation_count=len(activations),
            granularity=trigger.granularity,
            parent=parent,
        )
        produced = GraphDelta()
        activations = [self._refresh_new_side(a) for a in activations]
        for binding in bindings_for(trigger, activations):
            condition_rows = self._condition_rows(trigger, binding, tx)
            executed = bool(condition_rows)
            if executed:
                tx.end_statement()  # isolate the trigger's own changes
                for row in condition_rows:
                    self._execute_statement(trigger, binding, row, tx, context)
                produced = produced.merge(tx.end_statement())
                installed.executions += 1
            else:
                installed.suppressed += 1
            self.firings.append(
                TriggerFiring(
                    trigger_name=trigger.name,
                    depth=depth,
                    activation_count=len(activations),
                    condition_rows=len(condition_rows),
                    executed=executed,
                    action_time=trigger.time.value,
                )
            )
        return produced

    def _refresh_new_side(self, activation):
        """Re-read the NEW side from the store so earlier triggers' writes are visible.

        The OLD side stays frozen at its pre-event snapshot, as required by
        the transition-variable semantics.
        """
        new = activation.new
        if new is None:
            return activation
        from ..graph.model import Node as _Node

        if isinstance(new, _Node):
            if self.graph.has_node(new.id):
                refreshed = self.graph.node(new.id)
            else:
                return activation
        else:
            if self.graph.has_relationship(new.id):
                refreshed = self.graph.relationship(new.id)
            else:
                return activation
        if refreshed is new:
            return activation
        from .events import Activation as _Activation

        return _Activation(
            item=activation.item, old=activation.old, new=refreshed, property=activation.property
        )

    # ------------------------------------------------------------------
    # condition handling
    # ------------------------------------------------------------------

    def _condition_rows(
        self, trigger: TriggerDefinition, binding: TriggerBindings, tx: Transaction
    ) -> list[dict[str, Any]]:
        """Rows surviving the WHEN condition (one empty row when it is absent)."""
        if trigger.condition is None:
            return [{}]
        parsed = self._parse_condition(trigger)
        executor = self._executor(tx, binding)
        base = dict(binding.variables)
        try:
            if isinstance(parsed, Query):
                result = executor.execute(parsed, bindings=base)
                return [dict(row) for row in result.rows]
            # Plain expression: evaluate it as a WHERE filter over the bindings.
            query = Query(clauses=(ReturnClause(items=(), include_wildcard=True),))
            result = executor.execute(query, bindings=base)
            survivors = []
            for row in result.rows:
                value = executor._evaluate(parsed, {**base, **row})
                if value is True:
                    survivors.append(dict(row))
            return survivors
        except TransactionAborted:
            raise
        except CypherError as exc:
            raise TriggerExecutionError(trigger.name, "condition", exc) from exc

    def _parse_condition(self, trigger: TriggerDefinition):
        cached = self._condition_cache.get(trigger.name)
        if cached is not None:
            return cached
        text = trigger.condition or ""
        try:
            parsed: Any = parse_expression(text)
        except CypherSyntaxError:
            try:
                query = parse_query(text)
            except CypherError as exc:
                raise TriggerExecutionError(trigger.name, "condition", exc) from exc
            if not any(isinstance(clause, ReturnClause) for clause in query.clauses):
                query = Query(
                    clauses=query.clauses + (ReturnClause(items=(), include_wildcard=True),)
                )
            parsed = query
        self._condition_cache[trigger.name] = parsed
        return parsed

    # ------------------------------------------------------------------
    # statement handling
    # ------------------------------------------------------------------

    def _execute_statement(
        self,
        trigger: TriggerDefinition,
        binding: TriggerBindings,
        condition_row: Mapping[str, Any],
        tx: Transaction,
        context: ExecutionContext,
    ) -> None:
        parsed = self._statement_cache.get(trigger.name)
        if parsed is None:
            try:
                parsed = parse_query(trigger.statement)
            except CypherError as exc:
                raise TriggerExecutionError(trigger.name, "statement", exc) from exc
            self._statement_cache[trigger.name] = parsed
        executor = self._executor(tx, binding)
        bindings = {**binding.variables, **condition_row}
        try:
            executor.execute(parsed, bindings=bindings)
        except TransactionAborted:
            raise
        except CypherError as exc:
            raise TriggerExecutionError(trigger.name, "statement", exc) from exc

    def _executor(self, tx: Transaction, binding: TriggerBindings) -> QueryExecutor:
        return QueryExecutor(
            self.graph,
            transaction=tx,
            clock=self.clock,
            virtual_labels=binding.virtual_labels,
            procedures=self.procedures,
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def execution_counts(self) -> dict[str, int]:
        """Executions per trigger (from the registry's counters)."""
        return {t.name: t.executions for t in self.registry.ordered()}

    def firing_summary(self) -> dict[str, dict[str, int]]:
        """Per-trigger summary of the audit log."""
        summary: dict[str, dict[str, int]] = {}
        for firing in self.firings:
            entry = summary.setdefault(
                firing.trigger_name, {"executed": 0, "suppressed": 0, "max_depth": 0}
            )
            if firing.executed:
                entry["executed"] += 1
            else:
                entry["suppressed"] += 1
            entry["max_depth"] = max(entry["max_depth"], firing.depth)
        return summary
