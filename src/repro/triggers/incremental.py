"""Incremental trigger-condition evaluation: delta-maintained views.

Batched evaluation (PR 4) runs one pipeline pass *per delta*; at firehose
rates that still re-executes every installed trigger's condition query —
parse-cache lookup, planner consultation, pattern scan — thousands of
times per second, even though most deltas cannot possibly change what a
condition matches.  This module compiles eligible condition queries into
**delta-maintained materialized views**, a small discrimination network in
the Rete tradition:

* **alpha memories** — one per MATCH clause, holding the node snapshots
  that satisfy the clause's label and literal-property tests, keyed by
  node id.  Mutation events from the store (see
  :meth:`repro.graph.store.PropertyGraph.add_mutation_listener`) are
  routed by label, so a delta touches only the memories it can affect;
  everything else is filtered out before any per-trigger work happens.
* **the joined product** — evaluation walks the memories in clause order
  (depth-first, each memory in ascending id order) applying the clauses'
  WHERE residuals, which reproduces the executor's streaming row order
  *and* its error order exactly.  For conditions whose WHERE never reads
  a transition variable the filtered product is itself cached and only
  invalidated when a memory changes — the per-delta cost of such a
  trigger drops to a handful of dict operations.

Because the store notifies listeners from every primitive mutation —
including the transaction layer's rollback undo records and
detach-delete cascades, which funnel through the same public methods —
the views are *live*: when the engine replays activations one by one,
each activation's evaluation sees every earlier firing's writes, which
makes incremental evaluation sequential-equal by construction (no
independence analysis needed on this tier).

Safety rails, per the demotion ladder (incremental → batched →
sequential):

* Conditions outside the compiled footprint — relationship patterns,
  OPTIONAL MATCH, UNWIND, EXISTS, non-literal inline properties,
  transition variables used as pattern variables or labels — are
  rejected at compile time with a reason, and the engine falls back to
  the PR 4 batched path (or sequential evaluation) so results can never
  change.
* Views record the graph's index epoch and rebuild from scratch when it
  bumps (index/DDL changes) or after a bulk mutation (``clear()``).
* Re-installing or dropping a trigger prunes its view via the registry's
  version counter.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..cypher.ast import (
    Expression,
    ExistsPattern,
    FunctionCall,
    Literal,
    MatchClause,
    NodePattern,
    Parameter,
    Query,
    ReturnClause,
    Variable,
    walk_expression,
)
from ..cypher.executor import contains_aggregate
from ..cypher.expressions import EvaluationContext, evaluate
from ..graph.delta import OP_CREATE_NODE, OP_DELETE_NODE
from ..graph.model import Node
from ..graph.store import OP_BULK, PropertyGraph
from .ast import InstalledTrigger, TriggerDefinition
from .context import transition_names
from .registry import TriggerRegistry

# ---------------------------------------------------------------------------
# compile-time rejection reasons (surfaced by the engine's evaluation report)
# ---------------------------------------------------------------------------

REASON_SHAPE = "not a MATCH-only pipeline ending in RETURN *"
REASON_ROW_MIXING = "DISTINCT/ORDER BY/SKIP/LIMIT/aggregates mix rows"
REASON_OPTIONAL = "OPTIONAL MATCH"
REASON_MULTI_PATTERN = "multiple patterns in one MATCH"
REASON_PATH = "relationship or path pattern"
REASON_UNLABELLED = "unlabelled node pattern"
REASON_ANONYMOUS = "anonymous node pattern"
REASON_TRANSITION_VARIABLE = "transition variable used in a pattern"
REASON_DUPLICATE_VARIABLE = "variable bound by more than one clause"
REASON_NON_LITERAL_PROPERTIES = "non-literal inline properties"
REASON_EXISTS = "EXISTS pattern in WHERE"

#: Shared result for evaluations whose cached product is empty (callers
#: treat condition rows as read-only).
_EMPTY_ROWS: list[dict[str, Any]] = []


class _ViewClause:
    """One MATCH clause compiled for alpha-memory maintenance.

    ``labels`` and ``property_filters`` decide membership (the alpha
    test); ``where`` is kept as a *residual* evaluated per product row so
    its semantics — including nulls, type errors and evaluation order —
    stay exactly the executor's.
    """

    __slots__ = ("variable", "labels", "property_filters", "where", "where_names")

    def __init__(
        self,
        variable: str,
        labels: tuple[str, ...],
        property_filters: tuple[tuple[str, Any], ...],
        where: Optional[Expression],
    ) -> None:
        self.variable = variable
        self.labels = labels
        self.property_filters = property_filters
        self.where = where
        self.where_names: frozenset[str] = frozenset(
            sub.name
            for sub in (walk_expression(where) if where is not None else ())
            if isinstance(sub, Variable)
        )

    def matches(self, node: Node) -> bool:
        for label in self.labels:
            if label not in node.labels:
                return False
        for key, value in self.property_filters:
            if node.properties.get(key) != value:
                return False
        return True


def compile_condition_view(
    trigger: TriggerDefinition, condition: Query
) -> tuple[Optional["ConditionView"], Optional[str]]:
    """Compile ``condition`` into a view, or return ``(None, reason)``.

    The eligible shape is deliberately narrow — MATCH clauses of one
    single-node pattern each, literal inline properties, arbitrary WHERE
    residuals without EXISTS, and the engine-normalised wildcard RETURN —
    because everything inside it can be proven row-order- and
    error-order-equal to the executor.  Everything outside demotes to the
    batched tier, which handles the general pipeline shapes.
    """
    transitions = transition_names(trigger)
    clauses: list[_ViewClause] = []
    seen_variables: set[str] = set()
    for position, clause in enumerate(condition.clauses):
        if isinstance(clause, ReturnClause):
            if position != len(condition.clauses) - 1 or not clause.include_wildcard:
                return None, REASON_SHAPE
            if clause.distinct or clause.order_by:
                return None, REASON_ROW_MIXING
            if clause.skip is not None or clause.limit is not None:
                return None, REASON_ROW_MIXING
            if any(contains_aggregate(item.expression) for item in clause.items):
                return None, REASON_ROW_MIXING
            if clause.items:
                # Explicit projections alongside the wildcard add computed
                # columns the view does not model.
                return None, REASON_SHAPE
            continue
        if not isinstance(clause, MatchClause):
            return None, REASON_SHAPE
        if clause.optional:
            return None, REASON_OPTIONAL
        if len(clause.patterns) != 1:
            return None, REASON_MULTI_PATTERN
        pattern = clause.patterns[0]
        if pattern.variable is not None or pattern.shortest is not None:
            return None, REASON_PATH
        if len(pattern.elements) != 1:
            return None, REASON_PATH
        element = pattern.elements[0]
        if not isinstance(element, NodePattern):
            return None, REASON_PATH
        if element.variable is None:
            return None, REASON_ANONYMOUS
        if element.variable in transitions:
            return None, REASON_TRANSITION_VARIABLE
        if element.variable in seen_variables:
            return None, REASON_DUPLICATE_VARIABLE
        if not element.labels:
            return None, REASON_UNLABELLED
        if set(element.labels) & transitions:
            # Transition names resolve as per-activation virtual labels.
            return None, REASON_TRANSITION_VARIABLE
        filters = []
        for key, expr in element.properties:
            if not isinstance(expr, Literal):
                return None, REASON_NON_LITERAL_PROPERTIES
            filters.append((key, expr.value))
        if clause.where is not None:
            for sub in walk_expression(clause.where):
                if isinstance(sub, ExistsPattern):
                    return None, REASON_EXISTS
        seen_variables.add(element.variable)
        clauses.append(
            _ViewClause(element.variable, element.labels, tuple(filters), clause.where)
        )
    view_variables = set(seen_variables)
    invariant = all(_residual_invariant(c, view_variables) for c in clauses)
    return ConditionView(trigger, tuple(clauses), invariant), None


def _residual_invariant(clause: _ViewClause, view_variables: set[str]) -> bool:
    """May this clause's WHERE verdicts be cached across activations?

    Only when the residual reads nothing but the view's own (live-synced)
    variables: no transition variables, no parameters, and no function
    calls — functions may read the clock (``timestamp()``), which must be
    re-evaluated per activation exactly as sequential evaluation would.
    """
    if clause.where is None:
        return True
    if not clause.where_names <= view_variables:
        return False
    for sub in walk_expression(clause.where):
        if isinstance(sub, (FunctionCall, Parameter, ExistsPattern)):
            return False
    return True


class ConditionView:
    """A delta-maintained materialization of one trigger's condition."""

    __slots__ = (
        "trigger_name",
        "definition",
        "clauses",
        "watched_labels",
        "invariant",
        "stats",
        "_alphas",
        "_sorted_ids",
        "_built",
        "_epoch",
        "_product",
    )

    def __init__(
        self,
        trigger: TriggerDefinition,
        clauses: tuple[_ViewClause, ...],
        invariant: bool,
    ) -> None:
        self.trigger_name = trigger.name
        self.definition = trigger
        self.clauses = clauses
        self.watched_labels: frozenset[str] = frozenset(
            label for clause in clauses for label in clause.labels
        )
        self.invariant = invariant
        self.stats = {
            "deltas_applied": 0,
            "rebuilds": 0,
            "evaluations": 0,
            "product_reuses": 0,
        }
        self._alphas: list[dict[int, Node]] = [{} for _ in clauses]
        self._sorted_ids: list[Optional[list[int]]] = [None] * len(clauses)
        self._built = False
        self._epoch = -1
        self._product: Optional[list[dict[str, Any]]] = None

    # -- maintenance ----------------------------------------------------

    def partial_matches(self) -> int:
        """Total entries across the alpha memories (observability)."""
        return sum(len(alpha) for alpha in self._alphas)

    def ensure_current(self, graph: PropertyGraph) -> bool:
        """Rebuild after an epoch bump or bulk invalidation; True if rebuilt."""
        if self._built and self._epoch == graph.index_epoch:
            return False
        self.rebuild(graph)
        return True

    def rebuild(self, graph: PropertyGraph) -> None:
        for index, clause in enumerate(self.clauses):
            alpha: dict[int, Node] = {}
            for node in graph.nodes_with_label(clause.labels[0]):
                if clause.matches(node):
                    alpha[node.id] = node
            self._alphas[index] = alpha
            self._sorted_ids[index] = None
        self._product = None
        self._built = True
        self._epoch = graph.index_epoch
        self.stats["rebuilds"] += 1

    def apply(self, op: str, old: Optional[Node], new: Optional[Node]) -> None:
        """Fold one mutation event into the alpha memories."""
        if op == OP_BULK:
            self._built = False
            self._product = None
            return
        if not self._built:
            return
        self.stats["deltas_applied"] += 1
        target = new if new is not None else old
        changed = False
        for index, clause in enumerate(self.clauses):
            alpha = self._alphas[index]
            if new is not None and clause.matches(new):
                previous = alpha.get(new.id)
                if previous is not new:
                    if previous is None and new.id not in alpha:
                        self._sorted_ids[index] = None
                    alpha[new.id] = new
                    changed = True
            elif target.id in alpha:
                del alpha[target.id]
                self._sorted_ids[index] = None
                changed = True
        if changed:
            self._product = None

    # -- evaluation -----------------------------------------------------

    def rows_for(
        self, base_variables: dict[str, Any], context: EvaluationContext
    ) -> list[dict[str, Any]]:
        """The condition's surviving rows for one activation.

        Row order, row contents and error order match what
        :meth:`repro.cypher.executor.QueryExecutor.stream` produces for
        the same condition over the same bindings.
        """
        stats = self.stats
        stats["evaluations"] += 1
        if self.invariant:
            product = self._product
            if product is None:
                product = []
                self._collect({}, 0, product, context)
                self._product = product
            else:
                stats["product_reuses"] += 1
            if not product:
                # The overwhelmingly common firehose outcome (a gate that
                # never opens): hand back one shared empty list instead of
                # allocating 50k of them.  Callers only read it.
                return _EMPTY_ROWS
            return [{**base_variables, **delta} for delta in product]
        rows: list[dict[str, Any]] = []
        self._collect(dict(base_variables), 0, rows, context)
        return rows

    def _collect(
        self,
        row: dict[str, Any],
        clause_index: int,
        out: list[dict[str, Any]],
        context: EvaluationContext,
    ) -> None:
        """Depth-first product walk — the executor's streaming order."""
        if clause_index == len(self.clauses):
            out.append(row)
            return
        clause = self.clauses[clause_index]
        alpha = self._alphas[clause_index]
        ids = self._sorted_ids[clause_index]
        if ids is None:
            ids = sorted(alpha)
            self._sorted_ids[clause_index] = ids
        where = clause.where
        variable = clause.variable
        for node_id in ids:
            extended = dict(row)
            extended[variable] = alpha[node_id]
            if where is not None and evaluate(where, extended, context) is not True:
                continue
            self._collect(extended, clause_index + 1, out, context)


class IncrementalTriggerViews:
    """Compiles, routes deltas into, and prunes the condition views.

    One instance per :class:`~repro.triggers.engine.TriggerEngine`;
    registers a single mutation listener on the graph and dispatches
    events to views by label, so the per-mutation overhead with no views
    installed is one attribute check.
    """

    def __init__(self, graph: PropertyGraph, registry: TriggerRegistry) -> None:
        self.graph = graph
        self.registry = registry
        self._views: dict[str, ConditionView] = {}
        #: Compile rejections, ``name -> (definition, reason)`` (memoised
        #: so ineligible triggers cost one dict probe per delta).
        self._rejections: dict[str, tuple[TriggerDefinition, str]] = {}
        self._by_label: dict[str, list[ConditionView]] = {}
        self._registry_version = -1
        self.stats = {"mutations_routed": 0, "bulk_invalidations": 0}
        graph.add_mutation_listener(self._on_mutation)

    # -- view lookup ----------------------------------------------------

    def view_for(
        self, installed: InstalledTrigger, condition: Query
    ) -> Optional[ConditionView]:
        """The live view for ``installed``, compiling on first use.

        Returns ``None`` when the condition is outside the compiled
        footprint (the reason is kept for :meth:`rejection_reason`).
        """
        trigger = installed.definition
        self._sync_registry()
        view = self._views.get(trigger.name)
        if view is not None and view.definition is trigger:
            return view
        if view is not None:
            self._discard(trigger.name)
        rejected = self._rejections.get(trigger.name)
        if rejected is not None and rejected[0] is trigger:
            return None
        view, reason = compile_condition_view(trigger, condition)
        if view is None:
            self._rejections[trigger.name] = (trigger, reason or "ineligible")
            return None
        self._views[trigger.name] = view
        for label in view.watched_labels:
            self._by_label.setdefault(label, []).append(view)
        return view

    def rejection_reason(self, name: str) -> Optional[str]:
        rejected = self._rejections.get(name)
        return rejected[1] if rejected is not None else None

    def views(self) -> Iterator[ConditionView]:
        self._sync_registry()
        return iter(self._views.values())

    def view(self, name: str) -> Optional[ConditionView]:
        self._sync_registry()
        return self._views.get(name)

    def close(self) -> None:
        """Detach from the graph (used when an engine is discarded)."""
        self.graph.remove_mutation_listener(self._on_mutation)
        self._views.clear()
        self._by_label.clear()
        self._rejections.clear()

    # -- delta routing --------------------------------------------------

    def _on_mutation(self, op: str, old, new) -> None:
        by_label = self._by_label
        if not by_label:
            return
        if op == OP_BULK:
            self.stats["bulk_invalidations"] += 1
            for view in self._views.values():
                view.apply(op, None, None)
            return
        item = new if new is not None else old
        if not isinstance(item, Node):
            # Relationship ops are provably outside every view's footprint
            # (alpha memories hold nodes only).
            return
        if op == OP_CREATE_NODE or op == OP_DELETE_NODE:
            labels = item.labels
        else:
            # Label transitions: route by the union so a view watching the
            # removed label still sees the membership change.
            labels = old.labels | new.labels
        routed: Optional[set[int]] = None
        for label in labels:
            views = by_label.get(label)
            if not views:
                continue
            for view in views:
                if routed is None:
                    routed = set()
                elif id(view) in routed:
                    continue
                routed.add(id(view))
                view.apply(op, old, new)
        if routed:
            self.stats["mutations_routed"] += 1

    # -- registry pruning -----------------------------------------------

    def _sync_registry(self) -> None:
        version = self.registry.version
        if version == self._registry_version:
            return
        current = {t.name: t.definition for t in self.registry.ordered()}
        for name, view in list(self._views.items()):
            if current.get(name) is not view.definition:
                self._discard(name)
        for name, (definition, _) in list(self._rejections.items()):
            if current.get(name) is not definition:
                del self._rejections[name]
        self._registry_version = version

    def _discard(self, name: str) -> None:
        view = self._views.pop(name, None)
        if view is None:
            return
        for label in view.watched_labels:
            views = self._by_label.get(label)
            if views is not None:
                self._by_label[label] = [v for v in views if v is not view]
                if not self._by_label[label]:
                    del self._by_label[label]
