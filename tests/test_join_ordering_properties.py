"""Differential/property tests for cost-based multi-pattern join ordering.

The planner's join order is advisory: the patterns of one MATCH clause
form a commutative conjunction, so *any* execution order must produce the
same row set.  These tests generate randomized graphs and randomized
multi-pattern MATCH queries — including patterns that share variables and
deliberate cartesian products — and assert that the planner-ordered
streaming executor, the naive clause-order executor and the eager
clause-order baseline all return identical (sorted) rows, with and
without property indexes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cypher.errors import CypherError
from repro.cypher.executor import QueryExecutor
from repro.cypher.parser import parse_query
from repro.cypher.planner import plan_query
from repro.graph import PropertyGraph
from repro.graph.model import Node, Relationship

# ---------------------------------------------------------------------------
# randomized graphs
# ---------------------------------------------------------------------------

LABELS = ("A", "B", "C")
REL_TYPES = ("R", "S")

node_specs = st.lists(
    st.tuples(st.sampled_from(LABELS), st.integers(min_value=0, max_value=3)),
    min_size=0,
    max_size=10,
)
rel_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.sampled_from(REL_TYPES),
    ),
    min_size=0,
    max_size=14,
)
index_flags = st.booleans()


def build_graph(nodes, rels, indexed: bool) -> PropertyGraph:
    graph = PropertyGraph()
    created = []
    for label, value in nodes:
        created.append(graph.create_node([label], {"v": value}))
    for start, end, rel_type in rels:
        if created:
            a = created[start % len(created)]
            b = created[end % len(created)]
            graph.create_relationship(rel_type, a.id, b.id)
    if indexed:
        for label in LABELS:
            graph.create_property_index(label, "v")
    return graph


# ---------------------------------------------------------------------------
# randomized multi-pattern queries
# ---------------------------------------------------------------------------

#: (pattern text, variables it binds).  The pool deliberately mixes
#: shared-variable joins, anonymous interior nodes and disconnected
#: patterns (cartesian products).
PATTERN_POOL = [
    ("(a:A)", ("a",)),
    ("(b:B)", ("b",)),
    ("(c:C {v: 1})", ("c",)),
    ("(d:A {v: 0})", ("d",)),
    ("(a:A)-[:R]->(b:B)", ("a", "b")),
    ("(b:B)-[:S]->(c:C)", ("b", "c")),
    ("(a:A)-[:R]->(x)", ("a", "x")),
    ("(x)-[:S]->(c:C)", ("x", "c")),
    ("(a:A)-[r:R]->(y:B)", ("a", "r", "y")),
    # cross-pattern property reference: evaluation-order dependent, so
    # the planner must decline reordering and all variants must agree
    # (on rows, or on raising the same error when `a` is never bound)
    ("(e:B {v: a.v})", ("e",)),
]

#: WHERE templates keyed by the variables they need.
WHERE_POOL = [
    (("a",), "a.v > 0"),
    (("a", "b"), "a.v = b.v"),
    (("c",), "c.v = 1"),
    (("a", "c"), "a.v <> c.v"),
]

pattern_choices = st.lists(
    st.integers(min_value=0, max_value=len(PATTERN_POOL) - 1),
    min_size=2,
    max_size=3,
    unique=True,
)
where_choice = st.integers(min_value=-1, max_value=len(WHERE_POOL) - 1)


def build_query(choices, where_index) -> str:
    patterns = [PATTERN_POOL[i] for i in choices]
    bound: list[str] = []
    for _, variables in patterns:
        for name in variables:
            if name not in bound:
                bound.append(name)
    text = "MATCH " + ", ".join(text for text, _ in patterns)
    if where_index >= 0:
        needed, condition = WHERE_POOL[where_index]
        if set(needed) <= set(bound):
            text += f" WHERE {condition}"
    returns = ", ".join(f"{name} AS {name}" for name in bound)
    return f"{text} RETURN {returns}"


# ---------------------------------------------------------------------------
# canonical row comparison
# ---------------------------------------------------------------------------


def canonical(value):
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, list):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    return value


def sorted_rows(executor: QueryExecutor, query: str):
    result = executor.execute(query)
    return sorted(
        (tuple(sorted((k, canonical(v)) for k, v in row.items())) for row in result.rows),
        key=repr,
    )


def outcome(executor: QueryExecutor, query: str):
    """Sorted rows, or the error type — errors must also be order-independent."""
    try:
        return sorted_rows(executor, query)
    except CypherError as exc:
        return ("error", type(exc).__name__)


# ---------------------------------------------------------------------------
# the differential property
# ---------------------------------------------------------------------------


class TestJoinOrderingDifferential:
    @given(nodes=node_specs, rels=rel_specs, choices=pattern_choices,
           where_index=where_choice, indexed=index_flags)
    @settings(max_examples=120, deadline=None)
    def test_planner_order_naive_order_and_eager_agree(
        self, nodes, rels, choices, where_index, indexed
    ):
        graph = build_graph(nodes, rels, indexed)
        query = build_query(choices, where_index)
        ordered = outcome(QueryExecutor(graph), query)
        naive = outcome(QueryExecutor(graph, join_ordering=False), query)
        eager = outcome(QueryExecutor(graph, eager=True, join_ordering=False), query)
        assert ordered == naive == eager

    @given(nodes=node_specs, rels=rel_specs, choices=pattern_choices,
           where_index=where_choice)
    @settings(max_examples=60, deadline=None)
    def test_indexes_do_not_change_ordered_results(self, nodes, rels, choices, where_index):
        query = build_query(choices, where_index)
        plain = outcome(QueryExecutor(build_graph(nodes, rels, False)), query)
        indexed = outcome(QueryExecutor(build_graph(nodes, rels, True)), query)
        assert plain == indexed

    @given(nodes=node_specs, rels=rel_specs, choices=pattern_choices)
    @settings(max_examples=60, deadline=None)
    def test_join_order_is_a_permutation_with_estimates(self, nodes, rels, choices):
        graph = build_graph(nodes, rels, False)
        query = parse_query(build_query(choices, -1))
        plan = plan_query(query, graph)
        description = plan.plan_description()
        assert description.count("est~") >= len(choices)
        join_orders = plan.join_orders()
        if not join_orders:
            # the clause was declined: it must contain the evaluation-order
            # dependent cross-pattern property reference
            assert any(PATTERN_POOL[i][0] == "(e:B {v: a.v})" for i in choices)
            return
        [join_order] = join_orders
        assert sorted(join_order.order) == list(range(len(choices)))
        assert len(join_order.estimated_rows) == len(choices)
        assert all(estimate >= 0.0 for estimate in join_order.estimated_rows)
        assert "JoinOrder(" in description


# ---------------------------------------------------------------------------
# randomized ORDER BY / SKIP / LIMIT / range-predicate queries
# ---------------------------------------------------------------------------

#: WHERE templates exercising the physical layer's sargable shapes: range
#: conjuncts (IndexRangeSeek when a range index exists), IN lists, and the
#: cross-pattern equality that turns a disconnected pair into a HashJoin.
PHYSICAL_WHERE_POOL = [
    None,
    (("a",), "a.v > 0"),
    (("a",), "a.v >= 1 AND a.v < 3"),
    (("b",), "b.v <= 2"),
    (("c",), "c.v IN [0, 2, 7]"),
    (("a", "b"), "a.v = b.v"),
    (("a", "c"), "a.v > 0 AND a.v = c.v"),
]

physical_where_choice = st.integers(0, len(PHYSICAL_WHERE_POOL) - 1)
order_direction = st.sampled_from(["", " DESC"])
skip_choice = st.integers(min_value=-1, max_value=4)     # -1 = no SKIP
limit_choice = st.integers(min_value=-1, max_value=5)    # -1 = no LIMIT


def build_physical_query(choices, where_index, direction, skip, limit) -> str:
    patterns = [PATTERN_POOL[i] for i in choices if PATTERN_POOL[i][0] != "(e:B {v: a.v})"]
    if len(patterns) < 2:
        patterns = [PATTERN_POOL[0], PATTERN_POOL[1]]
    bound: list[str] = []
    for _, variables in patterns:
        for name in variables:
            if name not in bound:
                bound.append(name)
    text = "MATCH " + ", ".join(text for text, _ in patterns)
    where = PHYSICAL_WHERE_POOL[where_index]
    if where is not None:
        needed, condition = where
        if set(needed) <= set(bound):
            text += f" WHERE {condition}"
    returns = ", ".join(f"{name}.v AS {name}_v" for name in bound if name not in ("r",))
    text += f" RETURN {returns} ORDER BY {bound[0]}.v{direction}"
    if skip >= 0:
        text += f" SKIP {skip}"
    if limit >= 0:
        text += f" LIMIT {limit}"
    return text


def build_range_indexed_graph(nodes, rels) -> PropertyGraph:
    graph = build_graph(nodes, rels, indexed=False)
    for label in LABELS:
        graph.create_range_index(label, "v")
    return graph


class TestPhysicalOperatorDifferential:
    """Physical plans == naive order == eager baseline, under ORDER BY /
    SKIP / LIMIT / range predicates, with and without ordered indexes.

    ORDER BY ties are broken by *input order*, which legitimately differs
    between join orders — so exact row sequences are compared only between
    executors sharing one join order (streaming top-k vs eager full sort),
    while the cross-join-order assertion compares sorted row multisets of
    LIMIT-free queries (where the result set is order-independent).
    """

    @given(nodes=node_specs, rels=rel_specs, choices=pattern_choices,
           where_index=physical_where_choice, direction=order_direction,
           skip=skip_choice, limit=limit_choice)
    @settings(max_examples=120, deadline=None)
    def test_topk_equals_full_sort_per_join_order(
        self, nodes, rels, choices, where_index, direction, skip, limit
    ):
        query = build_physical_query(choices, where_index, direction, skip, limit)
        for graph in (build_graph(nodes, rels, False), build_range_indexed_graph(nodes, rels)):
            for join_ordering in (True, False):
                streaming = exact_outcome(
                    QueryExecutor(graph, join_ordering=join_ordering), query
                )
                eager = exact_outcome(
                    QueryExecutor(graph, eager=True, join_ordering=join_ordering), query
                )
                assert streaming == eager, query

    @given(nodes=node_specs, rels=rel_specs, choices=pattern_choices,
           where_index=physical_where_choice, direction=order_direction)
    @settings(max_examples=80, deadline=None)
    def test_row_sets_agree_across_plans_without_limit(
        self, nodes, rels, choices, where_index, direction
    ):
        query = build_physical_query(choices, where_index, direction, -1, -1)
        plain = outcome(QueryExecutor(build_graph(nodes, rels, False)), query)
        plain_exact = outcome(
            QueryExecutor(build_graph(nodes, rels, True)), query
        )
        indexed_graph = build_range_indexed_graph(nodes, rels)
        ranged = outcome(QueryExecutor(indexed_graph), query)
        naive = outcome(QueryExecutor(indexed_graph, join_ordering=False), query)
        eager = outcome(
            QueryExecutor(indexed_graph, eager=True, join_ordering=False), query
        )
        assert plain == plain_exact == ranged == naive == eager, query


def exact_outcome(executor: QueryExecutor, query: str):
    """Row list *in order* (or the error type) — for same-join-order pairs."""
    try:
        result = executor.execute(query)
        return [
            tuple(sorted((k, canonical(v)) for k, v in row.items()))
            for row in result.rows
        ]
    except CypherError as exc:
        return ("error", type(exc).__name__)


class TestDeliberateCartesianProducts:
    def test_cartesian_product_rows_are_complete(self):
        graph = PropertyGraph()
        for value in range(3):
            graph.create_node(["A"], {"v": value})
        for value in range(2):
            graph.create_node(["B"], {"v": value})
        query = "MATCH (a:A), (b:B) RETURN a.v AS av, b.v AS bv"
        ordered = sorted_rows(QueryExecutor(graph), query)
        naive = sorted_rows(QueryExecutor(graph, join_ordering=False), query)
        assert ordered == naive
        assert len(ordered) == 6
        plan = plan_query(parse_query(query), graph)
        [join_order] = plan.join_orders()
        assert join_order.cartesian
        # the smaller side (B) is planned first
        assert join_order.order == (1, 0)

    def test_connected_patterns_preferred_over_cheaper_disconnected(self):
        graph = PropertyGraph()
        hub = graph.create_node(["Small"], {"k": 1})
        for index in range(40):
            n = graph.create_node(["Big"], {"v": index})
            if index < 3:
                graph.create_relationship("R", hub.id, n.id)
        graph.create_node(["Tiny"], {})
        graph.create_node(["Tiny"], {})
        query = "MATCH (t:Tiny), (s:Small)-[:R]->(b:Big), (u:Small) RETURN t, s, b, u"
        plan = plan_query(parse_query(query), graph)
        [join_order] = plan.join_orders()
        # cheapest first (one of the Small-anchored patterns), then its
        # connected partner before the disconnected Tiny pattern
        first = join_order.order[0]
        assert first in (1, 2)
        assert join_order.cartesian
        ordered = sorted_rows(QueryExecutor(graph), query)
        naive = sorted_rows(QueryExecutor(graph, join_ordering=False), query)
        assert ordered == naive
