"""Tests for schema validation and the textual PG-Schema parser."""

import datetime

import pytest

from repro.graph import PropertyGraph
from repro.schema import (
    Int32Type,
    PGSchema,
    SchemaParseError,
    SchemaValidationError,
    StringType,
    ViolationKind,
    assert_valid,
    conforms,
    parse_schema,
    validate_graph,
)

SPEC = """
CREATE GRAPH TYPE CovidGraphType STRICT {
  (MutationType: Mutation {name STRING, protein STRING}),
  (CriticalEffectType: CriticalEffect {description STRING}),
  (SequenceType: Sequence {accession STRING KEY, collection DATE OPTIONAL}),
  (LineageType: Lineage {name STRING, whoDesignation STRING OPTIONAL}),
  (PatientType: Patient {ssn STRING KEY, name STRING OPTIONAL, sex CHAR OPTIONAL,
                         comorbidity ARRAY[STRING] OPTIONAL, vaccinated INT32 OPTIONAL}),
  (HospitalizedPatientType: PatientType & HospitalizedPatient
        {id INT32 OPTIONAL, prognosis STRING OPTIONAL, admission DATE OPTIONAL}),
  (IcuPatientType: HospitalizedPatientType & IcuPatient {admittedToICU BOOL OPTIONAL}),
  (HospitalType: Hospital {name STRING, icuBeds INT32}),
  (RegionType: Region {name STRING}),
  (LaboratoryType: Laboratory {name STRING}),
  (AlertType: Alert OPEN),
  (:MutationType)-[RiskType: Risk]->(:CriticalEffectType),
  (:MutationType)-[FoundInType: FoundIn]->(:SequenceType),
  (:SequenceType)-[BelongsToType: BelongsTo]->(:LineageType),
  (:SequenceType)-[SequencedAtType: SequencedAt]->(:LaboratoryType),
  (:PatientType)-[HasSampleType: HasSample]->(:SequenceType),
  (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType),
  (:HospitalType)-[LocatedInType: LocatedIn]->(:RegionType),
  (:LaboratoryType)-[LocatedInLabType: LocatedIn]->(:RegionType),
  (:HospitalType)-[ConnectedToType: ConnectedTo {distance INT32}]->(:HospitalType)
}
"""


@pytest.fixture
def schema():
    return parse_schema(SPEC)


class TestParser:
    def test_header(self, schema):
        assert schema.name == "CovidGraphType"
        assert schema.strict

    def test_node_types_parsed(self, schema):
        assert len(schema.node_types()) == 11
        patient = schema.node_type("Patient")
        assert patient.properties["ssn"].is_key
        assert patient.properties["comorbidity"].data_type.name == "ARRAY[STRING]"

    def test_hierarchy_parsed(self, schema):
        chain = [t.label for t in schema.supertypes("IcuPatient")]
        assert chain == ["HospitalizedPatient", "Patient"]

    def test_open_type_parsed(self, schema):
        assert schema.is_open("Alert")

    def test_edge_types_parsed(self, schema):
        assert len(schema.edge_types()) == 9
        connected = schema.edge_type_for_label("ConnectedTo")[0]
        assert connected.properties["distance"].data_type == Int32Type()
        assert len(schema.edge_type_for_label("LocatedIn")) == 2

    def test_keys_registered(self, schema):
        labels = {k.label for k in schema.keys()}
        assert labels == {"Sequence", "Patient"}

    def test_loose_mode(self):
        loose = parse_schema("CREATE GRAPH TYPE T LOOSE { (AType: A) }")
        assert not loose.strict

    def test_round_trip_through_to_spec(self, schema):
        reparsed = parse_schema(schema.to_spec().split("\nFOR ")[0])
        assert len(reparsed.node_types()) == len(schema.node_types())
        assert len(reparsed.edge_types()) == len(schema.edge_types())

    @pytest.mark.parametrize(
        "bad",
        [
            "CREATE GRAPH TYPE T { (AType: A) }",  # missing mode
            "CREATE GRAPH TYPE T STRICT { (A B C) }",  # malformed node entry
            "CREATE GRAPH TYPE T STRICT { (AType: A {x DECIMAL}) }",  # bad type
            "CREATE GRAPH TYPE T STRICT { (AType: A {x STRING WEIRD}) }",  # bad modifier
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(SchemaParseError):
            parse_schema(bad)


class TestValidation:
    def make_valid_graph(self, schema):
        graph = PropertyGraph()
        hospital = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 20})
        patient = graph.create_node(
            ["Patient", "HospitalizedPatient"],
            {"ssn": "P1", "prognosis": "severe"},
        )
        graph.create_relationship("TreatedAt", patient.id, hospital.id)
        return graph

    def test_valid_graph_has_no_violations(self, schema):
        graph = self.make_valid_graph(schema)
        assert conforms(graph, schema)
        assert_valid(graph, schema)  # does not raise

    def test_unlabeled_node_rejected_in_strict(self, schema):
        graph = self.make_valid_graph(schema)
        graph.create_node()
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.UNLABELED_ITEM in kinds

    def test_unknown_label_rejected_in_strict(self, schema):
        graph = self.make_valid_graph(schema)
        graph.create_node(["Spaceship"], {})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.UNKNOWN_LABEL in kinds

    def test_loose_mode_accepts_unknown_labels(self):
        loose = PGSchema("T", strict=False)
        loose.add_node_type("Known", {"name": StringType()})
        graph = PropertyGraph()
        graph.create_node(["Whatever"], {"x": 1})
        graph.create_node()
        assert conforms(graph, loose)

    def test_missing_required_property(self, schema):
        graph = PropertyGraph()
        graph.create_node(["Hospital"], {"name": "Sacco"})  # icuBeds missing
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.MISSING_PROPERTY in kinds

    def test_wrong_property_type(self, schema):
        graph = PropertyGraph()
        graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": "twenty"})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.WRONG_TYPE in kinds

    def test_undeclared_property_rejected_unless_open(self, schema):
        graph = PropertyGraph()
        graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 5, "helipad": True})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.UNDECLARED_PROPERTY in kinds
        # Alert is OPEN: arbitrary properties allowed
        open_graph = PropertyGraph()
        open_graph.create_node(["Alert"], {"time": datetime.datetime.now(), "whatever": 1})
        assert conforms(open_graph, schema)

    def test_subtype_must_carry_supertype_label(self, schema):
        graph = PropertyGraph()
        graph.create_node(["HospitalizedPatient"], {"ssn": "P1"})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.MISSING_SUPERTYPE_LABEL in kinds

    def test_relationship_endpoint_checking(self, schema):
        graph = PropertyGraph()
        mutation = graph.create_node(["Mutation"], {"name": "Spike:D614G", "protein": "Spike"})
        region = graph.create_node(["Region"], {"name": "Lombardy"})
        graph.create_relationship("Risk", mutation.id, region.id)
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.BAD_ENDPOINT in kinds

    def test_relationship_endpoint_accepts_subtypes(self, schema):
        graph = PropertyGraph()
        hospital = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 2})
        icu = graph.create_node(
            ["Patient", "HospitalizedPatient", "IcuPatient"], {"ssn": "P9"}
        )
        graph.create_relationship("TreatedAt", icu.id, hospital.id)
        assert conforms(graph, schema)

    def test_unknown_relationship_type_strict(self, schema):
        graph = self.make_valid_graph(schema)
        nodes = list(graph.nodes())
        graph.create_relationship("Teleports", nodes[0].id, nodes[1].id)
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.UNKNOWN_LABEL in kinds

    def test_key_violation_reported(self, schema):
        graph = self.make_valid_graph(schema)
        graph.create_node(["Patient"], {"ssn": "P1"})
        graph.create_node(["Patient"], {"ssn": "P1"})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.KEY_VIOLATION in kinds

    def test_assert_valid_raises_with_details(self, schema):
        graph = PropertyGraph()
        graph.create_node(["Spaceship"])
        with pytest.raises(SchemaValidationError) as excinfo:
            assert_valid(graph, schema)
        assert excinfo.value.violations

    def test_edge_property_type_checked(self, schema):
        graph = PropertyGraph()
        a = graph.create_node(["Hospital"], {"name": "A", "icuBeds": 1})
        b = graph.create_node(["Hospital"], {"name": "B", "icuBeds": 1})
        graph.create_relationship("ConnectedTo", a.id, b.id, {"distance": "far"})
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.WRONG_TYPE in kinds

    def test_abstract_type_cannot_be_instantiated(self):
        schema = PGSchema("T", strict=True)
        schema.add_node_type("Base", abstract=True)
        graph = PropertyGraph()
        graph.create_node(["Base"])
        kinds = {v.kind for v in validate_graph(graph, schema)}
        assert ViolationKind.ABSTRACT_INSTANCE in kinds
