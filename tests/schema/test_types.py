"""Tests for PG-Schema data types and property specs."""

import datetime

import pytest

from repro.schema import (
    AnyType,
    ArrayType,
    BoolType,
    CharType,
    DateTimeType,
    DateType,
    FloatType,
    Int32Type,
    IntType,
    PropertySpec,
    StringType,
    type_from_name,
)


class TestScalarTypes:
    def test_string(self):
        assert StringType().accepts("abc")
        assert not StringType().accepts(3)

    def test_char(self):
        assert CharType().accepts("M")
        assert not CharType().accepts("MF")
        assert not CharType().accepts(1)

    def test_int_rejects_bool(self):
        assert IntType().accepts(5)
        assert not IntType().accepts(True)
        assert not IntType().accepts(2.5)

    def test_int32_bounds(self):
        assert Int32Type().accepts(2 ** 31 - 1)
        assert not Int32Type().accepts(2 ** 31)
        assert Int32Type().accepts(-(2 ** 31))

    def test_float_accepts_int(self):
        assert FloatType().accepts(2.5)
        assert FloatType().accepts(3)
        assert not FloatType().accepts("3")

    def test_bool(self):
        assert BoolType().accepts(True)
        assert not BoolType().accepts(1)

    def test_date_and_datetime_are_distinct(self):
        assert DateType().accepts(datetime.date(2021, 1, 1))
        assert not DateType().accepts(datetime.datetime(2021, 1, 1))
        assert DateTimeType().accepts(datetime.datetime(2021, 1, 1))
        assert not DateTimeType().accepts(datetime.date(2021, 1, 1))

    def test_any(self):
        assert AnyType().accepts(object())

    def test_equality_by_type(self):
        assert StringType() == StringType()
        assert StringType() != IntType()


class TestArrayType:
    def test_typed_array(self):
        array = ArrayType(StringType())
        assert array.accepts(["a", "b"])
        assert not array.accepts(["a", 3])
        assert not array.accepts("abc")

    def test_untyped_array(self):
        assert ArrayType().accepts([1, "x"])

    def test_name(self):
        assert ArrayType(StringType()).name == "ARRAY[STRING]"


class TestTypeFromName:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("STRING", StringType()),
            ("string", StringType()),
            ("INT32", Int32Type()),
            ("INTEGER", IntType()),
            ("BOOL", BoolType()),
            ("DATE", DateType()),
            ("DATETIME", DateTimeType()),
            ("CHAR", CharType()),
            ("FLOAT", FloatType()),
            ("ANY", AnyType()),
        ],
    )
    def test_scalar_names(self, text, expected):
        assert type_from_name(text) == expected

    def test_array_names(self):
        assert type_from_name("ARRAY[STRING]") == ArrayType(StringType())
        assert type_from_name("ARRAY") == ArrayType(AnyType())

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            type_from_name("DECIMAL")


class TestPropertySpec:
    def test_accepts_delegates_to_type(self):
        spec = PropertySpec("icuBeds", Int32Type())
        assert spec.accepts(10)
        assert not spec.accepts("ten")

    def test_str_rendering(self):
        spec = PropertySpec("ssn", StringType(), is_key=True)
        assert str(spec) == "ssn STRING KEY"
        spec = PropertySpec("whoDesignation", StringType(), optional=True)
        assert str(spec) == "whoDesignation STRING OPTIONAL"
