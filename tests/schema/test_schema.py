"""Tests for PGSchema construction, hierarchies and keys."""

import pytest

from repro.graph import PropertyGraph
from repro.schema import (
    Int32Type,
    PGKey,
    PGSchema,
    PropertySpec,
    SchemaDefinitionError,
    StringType,
    check_keys,
)


@pytest.fixture
def schema():
    s = PGSchema("CovidGraphType", strict=True)
    s.add_node_type("Patient", {
        "ssn": PropertySpec("ssn", StringType(), is_key=True),
        "name": PropertySpec("name", StringType(), optional=True),
    })
    s.add_node_type(
        "HospitalizedPatient",
        {"id": Int32Type(), "prognosis": StringType()},
        supertype="PatientType",
    )
    s.add_node_type(
        "IcuPatient", {"admittedToICU": PropertySpec("admittedToICU", StringType(), optional=True)},
        supertype="HospitalizedPatientType",
    )
    s.add_node_type("Hospital", {"name": StringType(), "icuBeds": Int32Type()})
    s.add_edge_type("TreatedAt", "HospitalizedPatient", "Hospital")
    return s


class TestDefinition:
    def test_node_and_edge_counts(self, schema):
        assert len(schema.node_types()) == 4
        assert len(schema.edge_types()) == 1

    def test_duplicate_node_type_rejected(self, schema):
        with pytest.raises(SchemaDefinitionError):
            schema.add_node_type("Patient")

    def test_unknown_supertype_rejected(self, schema):
        with pytest.raises(SchemaDefinitionError):
            schema.add_node_type("Orphan", supertype="NoSuchType")

    def test_edge_type_requires_known_endpoints(self, schema):
        with pytest.raises(SchemaDefinitionError):
            schema.add_edge_type("LocatedIn", "Hospital", "Region")

    def test_key_registered_from_key_property(self, schema):
        keys = schema.keys()
        assert any(k.label == "Patient" and k.properties == ("ssn",) for k in keys)

    def test_lookup_by_label_or_name(self, schema):
        assert schema.node_type("Patient").name == "PatientType"
        assert schema.node_type("PatientType").label == "Patient"
        assert schema.has_node_label("Hospital")
        assert not schema.has_node_label("Laboratory")
        assert schema.has_edge_label("TreatedAt")

    def test_duplicate_edge_labels_allowed(self, schema):
        schema.add_node_type("Region", {"name": StringType()})
        schema.add_edge_type("LocatedIn", "Hospital", "Region")
        schema.add_edge_type("LocatedIn", "Patient", "Region")
        assert len(schema.edge_type_for_label("LocatedIn")) == 2


class TestHierarchy:
    def test_supertype_chain(self, schema):
        chain = [t.label for t in schema.supertypes("IcuPatient")]
        assert chain == ["HospitalizedPatient", "Patient"]

    def test_subtypes(self, schema):
        subs = {t.label for t in schema.subtypes("Patient")}
        assert subs == {"HospitalizedPatient", "IcuPatient"}

    def test_effective_properties_inherit(self, schema):
        props = schema.effective_properties("IcuPatient")
        assert {"ssn", "name", "id", "prognosis", "admittedToICU"} <= set(props)

    def test_expected_labels(self, schema):
        assert schema.expected_labels("IcuPatient") == {
            "IcuPatient",
            "HospitalizedPatient",
            "Patient",
        }
        assert schema.expected_labels("Patient") == {"Patient"}

    def test_open_propagation(self, schema):
        schema.add_node_type("Alert", open=True)
        schema.add_node_type("CriticalAlert", supertype="AlertType")
        assert schema.is_open("Alert")
        assert schema.is_open("CriticalAlert")
        assert not schema.is_open("Patient")


class TestKeys:
    def test_key_violations_duplicate(self):
        graph = PropertyGraph()
        graph.create_node(["Patient"], {"ssn": "X"})
        graph.create_node(["Patient"], {"ssn": "X"})
        key = PGKey("Patient", ("ssn",))
        problems = key.violations(graph)
        assert len(problems) == 1
        assert "share key" in problems[0]

    def test_key_violations_missing(self):
        graph = PropertyGraph()
        graph.create_node(["Patient"], {"name": "Ada"})
        key = PGKey("Patient", ("ssn",))
        assert any("missing key" in p for p in key.violations(graph))

    def test_composite_key(self):
        graph = PropertyGraph()
        graph.create_node(["Sample"], {"lab": "L1", "code": 1})
        graph.create_node(["Sample"], {"lab": "L1", "code": 2})
        key = PGKey("Sample", ("lab", "code"))
        assert key.is_satisfied(graph)

    def test_non_mandatory_key_allows_missing(self):
        graph = PropertyGraph()
        graph.create_node(["Patient"], {})
        key = PGKey("Patient", ("ssn",), mandatory=False)
        assert key.is_satisfied(graph)

    def test_check_keys_aggregates(self):
        graph = PropertyGraph()
        graph.create_node(["A"], {})
        graph.create_node(["B"], {})
        problems = check_keys(graph, [PGKey("A", ("k",)), PGKey("B", ("k",))])
        assert len(problems) == 2

    def test_key_str(self):
        assert str(PGKey("Patient", ("ssn",))) == "FOR (x:Patient) EXCLUSIVE MANDATORY SINGLETON x.ssn"


class TestRendering:
    def test_to_spec_round_trippable_fragment(self, schema):
        spec = schema.to_spec()
        assert "CREATE GRAPH TYPE CovidGraphType STRICT {" in spec
        assert "(PatientType: Patient" in spec
        assert "TreatedAtType: TreatedAt" in spec
        assert "FOR (x:Patient)" in spec
