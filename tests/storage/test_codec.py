"""Delta ↔ WAL codec audit: every delta record kind must round-trip.

Satellite of the durability PR: :mod:`repro.graph.delta` is audited for
records that do not survive serialize → replay, and the found behaviours
are pinned here.  The two noteworthy ones:

* cross-kind ordering — a node created, labelled and deleted inside one
  transaction only replays correctly because the delta keeps a unified
  operation journal (``operations()``), not just per-kind lists;
* hand-built deltas (no journal, e.g. constructed by tests or merged from
  summaries) fall back to a canonical kind ordering that is safe because
  the transaction layer never records no-op changes.
"""

from __future__ import annotations

import datetime as _dt

import pytest

from repro.graph import GraphDelta, PropertyGraph
from repro.graph.serialization import fingerprint
from repro.storage import DeltaCodecError, apply_operations, delta_round_trips, encode_delta
from repro.tx.manager import TransactionManager


def committed_delta(graph, mutate):
    """Run ``mutate(tx)`` in a transaction and return its committed delta."""
    manager = TransactionManager(graph)
    with manager.transaction() as tx:
        mutate(tx)
    return tx.transaction_delta


class TestPerKindRoundTrips:
    def test_create_node_with_labels_and_properties(self):
        graph = PropertyGraph()
        delta = committed_delta(
            graph,
            lambda tx: tx.create_node(
                ["Hospital", "Facility"],
                {"name": "Sacco", "beds": 20, "opened": _dt.date(1927, 1, 1)},
            ),
        )
        assert delta_round_trips(delta, PropertyGraph())

    def test_create_relationship(self):
        graph = PropertyGraph()
        base = PropertyGraph()

        def mutate(tx):
            a = tx.create_node(["A"])
            b = tx.create_node(["B"])
            tx.create_relationship("LINKS", a.id, b.id, {"weight": 1.5})

        delta = committed_delta(graph, mutate)
        assert delta_round_trips(delta, base)

    def test_deletions(self):
        graph = PropertyGraph()
        n1 = graph.create_node(["A"])
        n2 = graph.create_node(["B"])
        rel = graph.create_relationship("R", n1.id, n2.id)
        base = graph.copy()

        def mutate(tx):
            tx.delete_relationship(rel.id)
            tx.delete_node(n2.id)

        delta = committed_delta(graph, mutate)
        assert delta_round_trips(delta, base)

    def test_label_changes(self):
        graph = PropertyGraph()
        node = graph.create_node(["Patient"])
        base = graph.copy()

        def mutate(tx):
            tx.add_label(node.id, "IcuPatient")
            tx.remove_label(node.id, "Patient")

        delta = committed_delta(graph, mutate)
        assert delta_round_trips(delta, base)

    def test_property_changes_on_nodes_and_relationships(self):
        graph = PropertyGraph()
        n1 = graph.create_node(["A"], {"x": 1, "gone": "yes"})
        n2 = graph.create_node(["B"])
        rel = graph.create_relationship("R", n1.id, n2.id, {"w": 1})
        base = graph.copy()

        def mutate(tx):
            tx.set_node_property(n1.id, "x", [1, 2, 3])
            tx.remove_node_property(n1.id, "gone")
            tx.set_relationship_property(rel.id, "w", _dt.datetime(2021, 3, 14, 12, 0))

        delta = committed_delta(graph, mutate)
        assert delta_round_trips(delta, base)


class TestInterleaving:
    def test_create_label_then_delete_same_node_replays(self):
        # The classic per-kind-list failure mode: without the unified
        # journal, replay would create the node, then apply the label to a
        # node it had already deleted (canonical order deletes last — fine)
        # or delete before labelling (crash).  The journal keeps the exact
        # interleaving, so replay works for any ordering.
        graph = PropertyGraph()

        def mutate(tx):
            node = tx.create_node(["Temp"], {"x": 1})
            tx.add_label(node.id, "Flagged")
            keeper = tx.create_node(["Keeper"])
            tx.delete_node(node.id)
            tx.set_node_property(keeper.id, "saw", 1)

        delta = committed_delta(graph, mutate)
        replayed = PropertyGraph()
        apply_operations(replayed, encode_delta(delta))
        assert fingerprint(replayed) == fingerprint(graph)
        assert delta_round_trips(delta, PropertyGraph())

    def test_delete_then_recreate_relationship_endpoint(self):
        graph = PropertyGraph()
        a = graph.create_node(["A"])
        b = graph.create_node(["B"])
        rel = graph.create_relationship("R", a.id, b.id)
        base = graph.copy()

        def mutate(tx):
            tx.delete_relationship(rel.id)
            tx.delete_node(b.id)
            c = tx.create_node(["C"])
            tx.create_relationship("R2", a.id, c.id)

        delta = committed_delta(graph, mutate)
        assert delta_round_trips(delta, base)

    def test_operations_preserves_exact_recording_order(self):
        graph = PropertyGraph()

        def mutate(tx):
            node = tx.create_node(["A"])
            tx.add_label(node.id, "B")
            tx.delete_node(node.id)

        delta = committed_delta(graph, mutate)
        kinds = [kind for kind, _ in delta.operations()]
        assert kinds == ["create_node", "assign_label", "delete_node"]


class TestHandBuiltDeltas:
    def test_fallback_uses_canonical_safe_ordering(self):
        # A delta assembled by hand has no journal; operations() must fall
        # back to creates-first / deletes-last so replay never references a
        # missing item.
        from repro.graph.model import Node, Relationship

        delta = GraphDelta()
        node_a = Node(id=0, labels=frozenset(["A"]), properties={})
        node_b = Node(id=1, labels=frozenset(["B"]), properties={})
        rel = Relationship(id=0, type="R", start=0, end=1, properties={})
        # Record in a deliberately hostile order: deletion first.
        delta.deleted_relationships.append(rel)
        delta.created_nodes.extend([node_a, node_b])
        delta.created_relationships.append(rel)
        kinds = [kind for kind, _ in delta.operations()]
        assert kinds.index("create_node") < kinds.index("create_relationship")
        assert kinds.index("create_relationship") < kinds.index("delete_relationship")
        replayed = PropertyGraph()
        apply_operations(replayed, encode_delta(delta))
        assert replayed.node_count() == 2
        assert replayed.relationship_count() == 0

    def test_merge_concatenates_journals(self):
        graph = PropertyGraph()
        first = committed_delta(graph, lambda tx: tx.create_node(["A"]))
        second = committed_delta(graph, lambda tx: tx.create_node(["B"]))
        merged = first.merge(second)
        kinds = [record.id for kind, record in merged.operations()]
        assert kinds == [0, 1]
        assert delta_round_trips(merged, PropertyGraph())


class TestNoOpChanges:
    def test_adding_present_label_records_nothing(self):
        # Pinned behaviour: the transaction layer does not record no-op
        # label additions, so the WAL never carries them.
        graph = PropertyGraph()
        node = graph.create_node(["A"])
        delta = committed_delta(graph, lambda tx: tx.add_label(node.id, "A"))
        assert delta.is_empty()

    def test_removing_absent_property_records_nothing(self):
        graph = PropertyGraph()
        node = graph.create_node(["A"])
        delta = committed_delta(graph, lambda tx: tx.remove_node_property(node.id, "nope"))
        assert delta.is_empty()

    def test_replaying_noop_records_is_harmless(self):
        # Even if a hand-built delta contains them, replay tolerates no-ops
        # (store semantics: adding a present label / removing an absent
        # property do nothing).
        graph = PropertyGraph()
        graph.create_node(["A"], {"x": 1})
        before = fingerprint(graph)
        apply_operations(
            graph,
            [
                {"op": "assign_label", "id": 0, "label": "A"},
                {"op": "remove_property", "item": "node", "id": 0, "key": "nope"},
            ],
        )
        assert fingerprint(graph) == before


class TestErrors:
    def test_unknown_operation_kind_raises(self):
        with pytest.raises(DeltaCodecError):
            apply_operations(PropertyGraph(), [{"op": "explode"}])

    def test_replay_against_missing_node_raises_codec_error(self):
        with pytest.raises(DeltaCodecError):
            apply_operations(
                PropertyGraph(), [{"op": "assign_label", "id": 99, "label": "X"}]
            )
