"""Recovery-on-open tests: sessions, checkpoints and the database facade.

These run the real code paths twice — write through a durable session,
close it, reopen the same directory — on both the real filesystem
(``tmp_path``) and the in-memory one, and assert the recovered engine is
indistinguishable from the survivor: graph contents, triggers, index
catalogs, statistics and plan-cache hygiene.
"""

from __future__ import annotations

import pytest

from repro.database import GraphDatabase
from repro.graph.serialization import fingerprint
from repro.graph.store import PropertyGraph
from repro.storage import DurableStore, MemoryIO, RecoveryError, TriggerState
from repro.triggers.session import GraphSession

ALERT_TRIGGER = """
    CREATE TRIGGER MutationAlert
    AFTER CREATE ON 'Mutation'
    FOR EACH NODE
    BEGIN
      CREATE (:Alert {desc: 'new mutation'})
    END
"""


@pytest.fixture(params=["file", "memory"])
def opener(request, tmp_path):
    """Factory yielding sessions over one persistent location per test."""
    if request.param == "file":
        directory = str(tmp_path / "db")
        return lambda **kw: GraphSession(path=directory, **kw)
    io = MemoryIO()
    return lambda **kw: GraphSession(path="/db", storage_io=io, **kw)


class TestReopen:
    def test_graph_and_triggers_survive_restart(self, opener):
        session = opener()
        session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
        session.create_trigger(ALERT_TRIGGER)
        session.run("CREATE (:Mutation {name: 'B.1.1.7'})")
        expected = fingerprint(session.graph)
        session.close()

        recovered = opener()
        assert fingerprint(recovered.graph) == expected
        assert [t.name for t in recovered.registry.ordered()] == ["MutationAlert"]
        # The reinstalled trigger is live, not just catalogued:
        recovered.run("CREATE (:Mutation {name: 'P.1'})")
        assert len(recovered.graph.nodes_with_label("Alert")) == 2
        recovered.close()

    def test_rolled_back_transactions_are_invisible(self, opener):
        session = opener()
        session.run("CREATE (:Hospital {name: 'Sacco'})")
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.run("CREATE (:Hospital {name: 'Ghost'})")
                raise RuntimeError("abort")
        expected = fingerprint(session.graph)
        session.close()

        recovered = opener()
        assert fingerprint(recovered.graph) == expected
        assert recovered.graph.find_nodes("Hospital", {"name": "Ghost"}) == []
        recovered.close()

    def test_indexes_and_statistics_rebuild(self, opener):
        session = opener()
        for i in range(5):
            session.run(f"CREATE (:Hospital {{name: 'H{i}', beds: {10 + i}}})")
        session.graph.create_property_index("Hospital", "name")
        session.graph.create_range_index("Hospital", "beds")
        session.close()

        recovered = opener()
        assert recovered.graph.property_indexes() == [("Hospital", "name")]
        assert recovered.graph.range_indexes() == [("Hospital", "beds")]
        # Index actually answers lookups (rebuilt, not just declared):
        hits = recovered.graph.find_nodes("Hospital", {"name": "H3"})
        assert [n.properties["beds"] for n in hits] == [13]
        assert recovered.graph.count_nodes_with_label("Hospital") == 5
        sel = recovered.graph.property_index_selectivity("Hospital", "name")
        assert sel == 1.0
        recovered.close()

    def test_recovered_graph_gets_fresh_plan_token(self, opener):
        session = opener()
        session.run("CREATE (:Hospital)")
        token = session.graph.plan_token
        session.close()

        recovered = opener()
        assert recovered.graph.plan_token != token
        recovered.close()

    def test_trigger_enabled_state_survives(self, opener):
        session = opener()
        session.create_trigger(ALERT_TRIGGER)
        session.stop_trigger("MutationAlert")
        session.close()

        recovered = opener()
        trigger = recovered.registry.ordered()[0]
        assert trigger.enabled is False
        recovered.run("CREATE (:Mutation {name: 'quiet'})")
        assert recovered.graph.nodes_with_label("Alert") == []
        recovered.start_trigger("MutationAlert")
        recovered.close()

        third = opener()
        assert third.registry.ordered()[0].enabled is True
        third.close()

    def test_dropped_trigger_stays_dropped(self, opener):
        session = opener()
        session.create_trigger(ALERT_TRIGGER)
        session.drop_trigger("MutationAlert")
        session.close()

        recovered = opener()
        assert recovered.registry.ordered() == []
        recovered.close()


class TestCheckpoint:
    def test_checkpoint_truncates_the_wal(self, opener):
        session = opener()
        for i in range(3):
            session.run(f"CREATE (:Item {{seq: {i}}})")
        assert session.store.records_since_checkpoint == 3
        session.checkpoint()
        assert session.store.records_since_checkpoint == 0
        assert session.store.wal.scan().records == []
        expected = fingerprint(session.graph)
        session.close()

        recovered = opener()
        assert recovered.recovery.snapshot_loaded is True
        assert recovered.recovery.replayed_records == 0
        assert fingerprint(recovered.graph) == expected
        recovered.close()

    def test_wal_suffix_replays_over_snapshot(self, opener):
        session = opener()
        session.run("CREATE (:Item {seq: 0})")
        session.checkpoint()
        session.run("CREATE (:Item {seq: 1})")
        expected = fingerprint(session.graph)
        session.close()

        recovered = opener()
        assert recovered.recovery.snapshot_loaded is True
        assert recovered.recovery.replayed_records == 1
        assert fingerprint(recovered.graph) == expected
        recovered.close()

    def test_auto_checkpoint_fires_on_threshold(self, opener):
        session = opener(checkpoint_every=2)
        session.run("CREATE (:Item {seq: 0})")
        assert session.store.records_since_checkpoint == 1
        session.run("CREATE (:Item {seq: 1})")
        assert session.store.records_since_checkpoint == 0  # checkpointed
        session.run("CREATE (:Item {seq: 2})")
        expected = fingerprint(session.graph)
        session.close()

        recovered = opener()
        assert recovered.recovery.snapshot_loaded is True
        assert recovered.recovery.replayed_records == 1
        assert fingerprint(recovered.graph) == expected
        recovered.close()

    def test_checkpoint_requires_no_open_transaction(self, opener):
        session = opener()
        with pytest.raises(RuntimeError, match="transaction is open"):
            with session.transaction():
                session.checkpoint()
        session.close()

    def test_checkpoint_on_in_memory_session_raises(self):
        session = GraphSession()
        with pytest.raises(RuntimeError, match="in-memory"):
            session.checkpoint()


class TestDurableStoreEdges:
    def test_corrupt_snapshot_is_rejected(self):
        io = MemoryIO()
        store = DurableStore("/db", io=io)
        store.open()
        store.checkpoint(PropertyGraph(), [])
        data = bytearray(io.read_bytes("/db/snapshot.json"))
        data[len(data) // 2] ^= 0xFF
        io.write_bytes("/db/snapshot.json", bytes(data))
        with pytest.raises(RecoveryError):
            DurableStore("/db", io=io).open()

    def test_stale_snapshot_tmp_is_discarded(self):
        io = MemoryIO()
        store = DurableStore("/db", io=io)
        store.open()
        graph = PropertyGraph()
        graph.create_node(["A"])
        store.checkpoint(graph, [])
        io.write_bytes("/db/snapshot.json.tmp", b"half-written garbage")
        recovered = DurableStore("/db", io=io).open()
        assert not io.exists("/db/snapshot.json.tmp")
        assert recovered.graph.node_count() == 1

    def test_lsn_filter_skips_records_covered_by_snapshot(self):
        # Simulate a crash after the snapshot rename but before the WAL
        # reset: the full WAL coexists with a snapshot that covers it.
        io = MemoryIO()
        store = DurableStore("/db", io=io)
        state = store.open()
        with_node = state.graph
        with_node.create_node(["A"], {"x": 1})
        store.log_transaction(_delta_for(with_node))
        wal_bytes = io.read_bytes("/db/wal.log")
        store.checkpoint(with_node, [])
        io.write_bytes("/db/wal.log", wal_bytes)  # resurrect the pre-reset WAL

        recovered = DurableStore("/db", io=io).open()
        assert recovered.replayed_records == 0  # LSN filter skipped it
        assert recovered.graph.node_count() == 1

    def test_trigger_states_round_trip_through_snapshot(self):
        io = MemoryIO()
        store = DurableStore("/db", io=io)
        store.open()
        states = [
            TriggerState("A", "CREATE TRIGGER A AFTER CREATE ON 'X' FOR EACH NODE BEGIN DELETE NEW END"),
            TriggerState("B", "source-b", enabled=False),
        ]
        store.checkpoint(PropertyGraph(), states)
        recovered = DurableStore("/db", io=io).open()
        assert recovered.triggers == states


def _delta_for(graph):
    """A delta describing 'the first node of ``graph`` was created'."""
    from repro.graph.delta import GraphDelta

    delta = GraphDelta()
    delta.record_node_created(next(graph.nodes()))
    return delta


class TestSessionGuards:
    def test_path_and_graph_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            GraphSession(graph=PropertyGraph(), path="/db", storage_io=MemoryIO())

    def test_flush_requires_durable_session(self):
        with pytest.raises(RuntimeError, match="in-memory"):
            GraphSession().flush()

    def test_close_is_a_noop_in_memory(self):
        session = GraphSession()
        session.close()  # must not raise

    def test_context_manager_closes(self):
        io = MemoryIO()
        with GraphSession(path="/db", storage_io=io) as session:
            session.run("CREATE (:A)")
        with GraphSession(path="/db", storage_io=io) as recovered:
            assert recovered.graph.node_count() == 1

    def test_group_commit_defers_durability(self):
        io = MemoryIO()
        session = GraphSession(path="/db", storage_io=io, group_commit_size=10)
        session.run("CREATE (:A)")
        assert session.store.wal.unsynced_appends == 1
        session.flush()
        assert session.store.wal.unsynced_appends == 0
        session.close()


class TestGraphDatabaseFacade:
    def test_durable_database_round_trips_graphs(self, tmp_path):
        directory = str(tmp_path / "catalog")
        with GraphDatabase(path=directory) as db:
            db.graph("covid").run("CREATE (:Hospital {name: 'Sacco'})")
            db.graph("energy").run("CREATE (:Meter {kwh: 3})")
            assert sorted(db.list_graphs()) == ["covid", "energy"]

        with GraphDatabase(path=directory) as db:
            assert db.has_graph("covid") and db.has_graph("energy")
            assert sorted(db.list_graphs()) == ["covid", "energy"]
            assert db.graph("covid").graph.node_count() == 1
            assert db.graph("energy").graph.node_count() == 1

    def test_checkpoint_all_open_sessions(self, tmp_path):
        with GraphDatabase(path=str(tmp_path / "db")) as db:
            db.graph("a").run("CREATE (:X)")
            db.checkpoint()
            assert db.graph("a").store.records_since_checkpoint == 0

    def test_drop_graph_deletes_persisted_state(self, tmp_path):
        directory = str(tmp_path / "db")
        with GraphDatabase(path=directory) as db:
            db.graph("doomed").run("CREATE (:X)")
        with GraphDatabase(path=directory) as db:
            db.drop_graph("doomed")
            assert not db.has_graph("doomed")
        with GraphDatabase(path=directory) as db:
            assert not db.has_graph("doomed")

    def test_durable_names_must_be_filesystem_safe(self, tmp_path):
        with GraphDatabase(path=str(tmp_path / "db")) as db:
            with pytest.raises(ValueError, match="directory name"):
                db.create_graph("../escape")

    def test_durable_database_rejects_adopted_graphs(self, tmp_path):
        with GraphDatabase(path=str(tmp_path / "db")) as db:
            with pytest.raises(ValueError, match="adopt"):
                db.create_graph("g", graph=PropertyGraph())

    def test_in_memory_database_unchanged(self):
        db = GraphDatabase()
        assert db.durable is False
        db.graph("g").run("CREATE (:X)")
        assert db.list_graphs() == ["g"]
        db.close()  # no-op
