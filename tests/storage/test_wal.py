"""Unit tests for the WAL frame format, scanning and group commit."""

from __future__ import annotations

import pytest

from repro.storage import MemoryIO, WriteAheadLog, encode_record, scan_wal
from repro.storage.wal import RECORD_MAGIC, _FRAME_HEADER


class CountingIO(MemoryIO):
    """MemoryIO that counts fsync calls (group-commit observability)."""

    def __init__(self) -> None:
        super().__init__()
        self.fsyncs = 0

    def fsync(self, path: str) -> None:
        super().fsync(path)
        self.fsyncs += 1


@pytest.fixture
def io():
    return CountingIO()


def make_log(io, **kwargs):
    return WriteAheadLog(io, "/db/wal.log", **kwargs)


class TestFraming:
    def test_record_round_trips(self, io):
        log = make_log(io)
        log.append({"type": "tx", "lsn": 1, "ops": []})
        log.append({"type": "tx", "lsn": 2, "ops": [{"op": "create_node", "id": 0}]})
        scan = log.scan()
        assert [r["lsn"] for r in scan.records] == [1, 2]
        assert scan.torn_bytes == 0

    def test_frame_layout(self):
        frame = encode_record({"a": 1})
        magic, length, _crc = _FRAME_HEADER.unpack_from(frame)
        assert magic == RECORD_MAGIC
        assert len(frame) == _FRAME_HEADER.size + length

    def test_scan_missing_file_is_empty(self, io):
        scan = scan_wal(io, "/db/absent.log")
        assert scan.records == [] and scan.total_size == 0

    def test_unicode_payload_round_trips(self, io):
        log = make_log(io)
        log.append({"type": "tx", "lsn": 1, "name": "città ålesund 東京"})
        assert log.scan().records[0]["name"] == "città ålesund 東京"


class TestTornTails:
    def test_partial_frame_is_a_torn_tail(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        frame = encode_record({"lsn": 2})
        io.append_bytes(log.path, frame[: len(frame) - 3])
        scan = log.scan()
        assert [r["lsn"] for r in scan.records] == [1]
        assert scan.torn_bytes == len(frame) - 3

    def test_corrupt_crc_stops_the_scan(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        log.append({"lsn": 2})
        # Flip a payload byte of the second record.
        data = io.files[log.path]
        data[-1] ^= 0xFF
        scan = log.scan()
        assert [r["lsn"] for r in scan.records] == [1]
        assert scan.torn_bytes > 0

    def test_bad_magic_stops_the_scan(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        io.append_bytes(log.path, b"GARBAGE-NOT-A-FRAME")
        scan = log.scan()
        assert len(scan.records) == 1

    def test_truncate_torn_tail_removes_garbage(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        io.append_bytes(log.path, b"\x00\x01torn")
        scan = log.truncate_torn_tail()
        assert scan.torn_bytes > 0
        after = log.scan()
        assert after.torn_bytes == 0
        assert [r["lsn"] for r in after.records] == [1]

    def test_truncate_is_a_noop_on_clean_log(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        size = io.file_size(log.path)
        log.truncate_torn_tail()
        assert io.file_size(log.path) == size


class TestGroupCommit:
    def test_default_policy_fsyncs_every_append(self, io):
        log = make_log(io)
        for lsn in range(1, 4):
            log.append({"lsn": lsn})
        assert io.fsyncs == 3

    def test_group_commit_batches_fsyncs(self, io):
        log = make_log(io, group_commit_size=3)
        for lsn in range(1, 7):
            log.append({"lsn": lsn})
        assert io.fsyncs == 2  # after lsn 3 and lsn 6
        log.append({"lsn": 7})
        assert io.fsyncs == 2
        assert log.unsynced_appends == 1
        log.sync()
        assert io.fsyncs == 3
        assert log.unsynced_appends == 0

    def test_sync_true_overrides_the_batch(self, io):
        log = make_log(io, group_commit_size=10)
        log.append({"lsn": 1})
        assert io.fsyncs == 0
        log.append({"lsn": 2}, sync=True)
        assert io.fsyncs == 1

    def test_sync_false_suppresses_the_fsync(self, io):
        log = make_log(io)
        log.append({"lsn": 1}, sync=False)
        assert io.fsyncs == 0

    def test_sync_without_appends_does_nothing(self, io):
        log = make_log(io)
        log.sync()
        assert io.fsyncs == 0

    def test_group_size_must_be_positive(self, io):
        with pytest.raises(ValueError):
            make_log(io, group_commit_size=0)

    def test_reset_empties_the_log(self, io):
        log = make_log(io)
        log.append({"lsn": 1})
        log.reset()
        assert io.file_size(log.path) == 0
        assert log.scan().records == []
