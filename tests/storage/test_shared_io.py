"""Regressions for shared-StorageIO lifecycle bugs.

A durable :class:`~repro.database.GraphDatabase` hands one ``StorageIO`` to
every graph's store.  Two historical bugs lived there:

* closing ONE graph's session called ``io.close()``, clearing every sibling
  graph's cached append handles (and, for graphs mid-group-commit, dropping
  acked-but-unflushed WAL records);
* dropping graphs leaked the shared ``FileIO``'s append handles — the fd
  count grew with every create/drop cycle.
"""

from __future__ import annotations

import pytest

from repro.database import GraphDatabase
from repro.storage import FileIO, MemoryIO
from repro.triggers.session import GraphSession


class SyncCountingIO(MemoryIO):
    """MemoryIO that records which paths were fsynced, in order."""

    def __init__(self) -> None:
        super().__init__()
        self.synced: list[str] = []

    def fsync(self, path: str) -> None:
        super().fsync(path)
        self.synced.append(path)


class TestSharedFileIOHandles:
    def test_closing_one_store_preserves_sibling_handles(self, tmp_path):
        io = FileIO()
        a = GraphSession(path=str(tmp_path / "a"), storage_io=io)
        b = GraphSession(path=str(tmp_path / "b"), storage_io=io)
        a.run("CREATE (:InA)")
        b.run("CREATE (:InB)")
        assert io.cached_handle_count() == 2  # one WAL handle per graph

        a.close()
        # Only a's handle goes away; b keeps working on its live handle.
        assert io.cached_handle_count() == 1
        b.run("CREATE (:InB)")
        b.close()
        assert io.cached_handle_count() == 0

    def test_create_drop_loop_is_fd_bounded(self, tmp_path):
        io = FileIO()
        db = GraphDatabase(path=str(tmp_path), storage_io=io)
        for cycle in range(10):
            name = f"graph{cycle}"
            session = db.graph(name)
            session.run("CREATE (:Ephemeral {cycle: $c})", {"c": cycle})
            db.drop_graph(name)
            assert io.cached_handle_count() == 0, f"fd leak after cycle {cycle}"
        db.close()

    def test_session_owning_its_io_still_closes_it(self, tmp_path):
        session = GraphSession(path=str(tmp_path / "own"))
        io = session.store.io
        session.run("CREATE (:N)")
        assert io.cached_handle_count() == 1
        session.close()
        assert io.cached_handle_count() == 0


class TestGroupCommitFlushOnClose:
    def test_close_fsyncs_buffered_wal_records(self, tmp_path):
        io = SyncCountingIO()
        path = str(tmp_path / "g")
        session = GraphSession(path=path, storage_io=io, group_commit_size=1000)
        wal_path = session.store.wal_path
        for index in range(3):
            session.run("CREATE (:Acked {seq: $s})", {"s": index})
        # Group commit is deferring: the records are appended but the WAL
        # has not been fsynced for them yet.
        assert session.store.wal.unsynced_appends == 3
        synced_before = io.synced.count(wal_path)
        session.close()
        assert io.synced.count(wal_path) > synced_before
        assert session.store.wal.unsynced_appends == 0

        recovered = GraphSession(path=path, storage_io=io)
        assert recovered.run("MATCH (a:Acked) RETURN count(*) AS c").single() == 3
        recovered.close()

    def test_database_drop_flushes_before_delete(self, tmp_path):
        """drop_graph closes the session first (flushing) and then deletes;
        the flush must not be skipped just because the files go away."""
        io = SyncCountingIO()
        db = GraphDatabase(path=str(tmp_path), storage_io=io, group_commit_size=1000)
        session = db.graph("doomed")
        wal_path = session.store.wal_path
        session.run("CREATE (:N)")
        assert session.store.wal.unsynced_appends == 1
        db.drop_graph("doomed")
        assert wal_path in io.synced
        assert not io.exists(wal_path)

    def test_double_close_is_idempotent(self, tmp_path):
        session = GraphSession(path=str(tmp_path / "g"), storage_io=MemoryIO())
        session.run("CREATE (:N)")
        session.close()
        session.close()


class TestPendingAppendsAccessor:
    def test_pending_appends_counts_unsynced_records(self, tmp_path):
        io = MemoryIO()
        session = GraphSession(path=str(tmp_path / "g"), storage_io=io, group_commit_size=3)
        assert session.store.wal.unsynced_appends == 0
        session.run("CREATE (:N)")
        session.run("CREATE (:N)")
        assert session.store.wal.unsynced_appends == 2
        session.run("CREATE (:N)")  # hits the group size: auto-sync
        assert session.store.wal.unsynced_appends == 0
        session.close()


@pytest.mark.parametrize("group_commit_size", [1, 7])
def test_shared_memory_io_database_round_trip(tmp_path, group_commit_size):
    """Several graphs on one MemoryIO: close the database, reopen, all there."""
    io = MemoryIO()
    path = str(tmp_path)
    db = GraphDatabase(path=path, storage_io=io, group_commit_size=group_commit_size)
    for name in ("alpha", "beta", "gamma"):
        session = db.graph(name)
        for index in range(5):
            session.run("CREATE (:Row {graph: $g, seq: $s})", {"g": name, "s": index})
    db.close()

    reopened = GraphDatabase(path=path, storage_io=io)
    assert sorted(reopened.list_graphs()) == ["alpha", "beta", "gamma"]
    for name in ("alpha", "beta", "gamma"):
        count = reopened.graph(name).run("MATCH (r:Row) RETURN count(*) AS c").single()
        assert count == 5
    reopened.close()
