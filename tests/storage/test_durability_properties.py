"""Property-based differential durability suite (hypothesis).

Random sequences of write transactions, rollbacks, trigger/index DDL and
checkpoints are applied to a durable session; the suite then asserts the
WAL+snapshot machinery is a faithful mirror of the in-memory engine:

* close → reopen yields a graph, trigger registry and index catalog
  identical to the in-memory survivor's;
* the same invariant holds at *injected crash points* — the simulated
  disk image frozen before a sampled I/O operation recovers to exactly
  the state the crash model predicts (see ``crashpoints``).
"""

from __future__ import annotations

import datetime as _dt
import string

from hypothesis import given, settings, strategies as st

from repro.storage import MemoryIO
from repro.triggers.session import GraphSession
from tests.storage.crashpoints import CLOCK, Step, capture, recover, run_workload


def _shape(graph):
    """Id-insensitive structural summary of a graph."""
    nodes = sorted(
        (sorted(node.labels), sorted((k, repr(v)) for k, v in node.properties.items()))
        for node in graph.nodes()
    )
    return nodes, graph.relationship_count()

# ---------------------------------------------------------------------------
# strategies: each drawn action commits at most one WAL record
# ---------------------------------------------------------------------------

labels = st.sampled_from(["Patient", "Hospital", "Mutation", "Alert"])
property_keys = st.sampled_from(["name", "value", "icuBeds", "flag"])
scalar_values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.booleans(),
    st.text(alphabet=string.ascii_letters, min_size=0, max_size=6),
    st.just(_dt.date(2021, 3, 14)),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)

actions = st.one_of(
    st.tuples(st.just("create_node"), labels, property_keys, scalar_values),
    st.tuples(st.just("set_prop"), st.integers(0, 30), property_keys, scalar_values),
    st.tuples(st.just("remove_prop"), st.integers(0, 30), property_keys),
    st.tuples(st.just("create_rel"), st.integers(0, 30), st.integers(0, 30)),
    st.tuples(st.just("delete_node"), st.integers(0, 30)),
    st.tuples(st.just("rollback"), labels),
    st.tuples(st.just("install_trigger"), st.sampled_from(["T1", "T2"])),
    st.tuples(st.just("drop_trigger"), st.sampled_from(["T1", "T2"])),
    st.tuples(st.just("toggle_trigger"), st.sampled_from(["T1", "T2"])),
    st.tuples(st.just("create_index"), labels, property_keys),
    st.tuples(st.just("drop_index"), labels, property_keys),
    st.tuples(st.just("checkpoint"),),
)

action_sequences = st.lists(actions, min_size=1, max_size=12)


def _trigger_source(name):
    return (
        f"CREATE TRIGGER {name} AFTER CREATE ON 'Mutation' FOR EACH NODE "
        f"BEGIN CREATE (:Alert {{via: '{name}'}}) END"
    )


def _pick_node(session, index):
    ids = sorted(node.id for node in session.graph.nodes())
    return ids[index % len(ids)] if ids else None


def _apply(session, action):
    """Interpret one drawn action against the session.

    Every branch either commits one transaction (one WAL record), performs
    one DDL statement (one record), checkpoints (no record) or is a no-op
    — the granularity both the differential and the crash harness rely on.
    """
    kind = action[0]
    manager = session.manager
    if kind == "create_node":
        _, label, key, value = action
        with manager.transaction() as tx:
            tx.create_node([label], {key: value})
    elif kind == "set_prop":
        _, pick, key, value = action
        node_id = _pick_node(session, pick)
        if node_id is not None:
            with manager.transaction() as tx:
                tx.set_node_property(node_id, key, value)
    elif kind == "remove_prop":
        _, pick, key = action
        node_id = _pick_node(session, pick)
        if node_id is not None:
            with manager.transaction() as tx:
                tx.remove_node_property(node_id, key)
    elif kind == "create_rel":
        _, pick_a, pick_b = action
        start, end = _pick_node(session, pick_a), _pick_node(session, pick_b)
        if start is not None and end is not None:
            with manager.transaction() as tx:
                tx.create_relationship("LINKS", start, end)
    elif kind == "delete_node":
        node_id = _pick_node(session, action[1])
        if node_id is not None:
            with manager.transaction() as tx:
                tx.delete_node(node_id, detach=True)
    elif kind == "rollback":
        tx = manager.begin()
        tx.create_node([action[1]], {"doomed": True})
        manager.rollback(tx)
    elif kind == "install_trigger":
        name = action[1]
        if not any(t.name == name for t in session.registry.ordered()):
            session.create_trigger(_trigger_source(name))
    elif kind == "drop_trigger":
        name = action[1]
        if any(t.name == name for t in session.registry.ordered()):
            session.drop_trigger(name)
    elif kind == "toggle_trigger":
        name = action[1]
        installed = [t for t in session.registry.ordered() if t.name == name]
        if installed:
            if installed[0].enabled:
                session.stop_trigger(name)
            else:
                session.start_trigger(name)
    elif kind == "create_index":
        _, label, key = action
        if (label, key) not in session.graph.property_indexes():
            session.graph.create_property_index(label, key)
    elif kind == "drop_index":
        _, label, key = action
        if (label, key) in session.graph.property_indexes():
            session.graph.drop_property_index(label, key)
    elif kind == "checkpoint":
        session.checkpoint()
    else:  # pragma: no cover
        raise AssertionError(f"unhandled action {action!r}")


class TestDifferentialRecovery:
    @given(action_sequences)
    @settings(max_examples=60, deadline=None)
    def test_reopen_equals_survivor(self, sequence):
        io = MemoryIO()
        session = GraphSession(path="/propdb", storage_io=io, clock=CLOCK)
        for action in sequence:
            _apply(session, action)
        survivor = capture(session)
        survivor_indexes = session.graph.property_indexes()
        session.close()

        recovered = GraphSession(path="/propdb", storage_io=io, clock=CLOCK)
        assert capture(recovered) == survivor
        assert recovered.graph.property_indexes() == survivor_indexes
        recovered.close()

    @given(action_sequences)
    @settings(max_examples=60, deadline=None)
    def test_recovered_session_continues_identically(self, sequence):
        # Run the same post-recovery write on survivor and recovered twin;
        # they must stay in lockstep (ids, indexes, triggers all aligned).
        io = MemoryIO()
        session = GraphSession(path="/propdb", storage_io=io, clock=CLOCK)
        for action in sequence:
            _apply(session, action)
        session.store.sync()
        recovered = GraphSession(
            path="/propdb", storage_io=MemoryIO(dict(io.files)), clock=CLOCK
        )
        for twin in (session, recovered):
            twin.run("CREATE (:Mutation {name: 'omicron'})")
        # Ids may legitimately diverge (rolled-back transactions consume ids
        # on the survivor but never reach the WAL), so compare the
        # id-insensitive shape: per-node label/property bags and the count
        # of relationships.  Trigger firings must match exactly — if T1/T2
        # is live, both twins' CREATE must have produced the same alerts.
        assert _shape(session.graph) == _shape(recovered.graph)
        assert len(session.graph.nodes_with_label("Alert")) == len(
            recovered.graph.nodes_with_label("Alert")
        )
        session.close()
        recovered.close()

    @given(action_sequences, st.data())
    @settings(max_examples=25, deadline=None)
    def test_sampled_crash_points_recover_exactly(self, sequence, data):
        steps = [
            Step(f"action {i}: {action[0]}", (lambda a: lambda s: _apply(s, a))(action))
            for i, action in enumerate(sequence)
        ]
        matrix = run_workload(steps, directory="/propcrash")
        if not matrix.points:
            return
        indices = data.draw(
            st.lists(
                st.integers(0, len(matrix.points) - 1),
                min_size=1,
                max_size=6,
                unique=True,
            )
        )
        for index in indices:
            point = matrix.points[index]
            recovered = recover(matrix.directory, point.files)
            try:
                assert capture(recovered) == point.expected, (
                    f"crash at op {point.index} ({point.label}, {point.mode})"
                )
            finally:
                recovered.close()
