"""Exhaustive crash-point enumeration over the durability layer.

Each test runs a workload once on the instrumented filesystem
(:mod:`tests.storage.crashpoints`), then simulates a process death before
*every* I/O operation the durability layer issued — in both crash models —
and asserts that recovery restores exactly the last committed state:
committed effects are durable, uncommitted/unfsynced effects are invisible,
and triggers and indexes come back intact.
"""

from __future__ import annotations

import pytest

from tests.storage.crashpoints import (
    MODE_LOST,
    MODE_WRITEBACK,
    Step,
    capture,
    iter_assertions,
    recover,
    run_workload,
)

NEW_MUTATION_TRIGGER = """
    CREATE TRIGGER NewMutation
    AFTER CREATE ON 'Mutation'
    FOR EACH NODE
    BEGIN
      CREATE (:Alert {desc: 'new mutation', mutation: NEW.name})
    END
"""

AUDIT_TRIGGER = """
    CREATE TRIGGER AuditHospitals
    AFTER CREATE ON 'Hospital'
    FOR EACH NODE
    BEGIN
      SET NEW.audited = true
    END
"""


def _explicit_transaction(session):
    with session.transaction():
        session.run("CREATE (:Hospital {name: 'Niguarda', icuBeds: 30})")
        session.run("MATCH (h:Hospital {name: 'Sacco'}) SET h.icuBeds = 18")


WORKLOAD = [
    Step("create first hospital", lambda s: s.run(
        "CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")),
    Step("install mutation trigger", lambda s: s.create_trigger(NEW_MUTATION_TRIGGER)),
    Step("declare property index", lambda s: s.graph.create_property_index(
        "Hospital", "name")),
    Step("create mutation (fires trigger)", lambda s: s.run(
        "CREATE (:Mutation {name: 'B.1.1.7'})")),
    Step("multi-statement transaction", _explicit_transaction),
    Step("install audit trigger", lambda s: s.create_trigger(AUDIT_TRIGGER)),
    Step("stop audit trigger", lambda s: s.stop_trigger("AuditHospitals")),
    Step("checkpoint", lambda s: s.checkpoint()),
    Step("create post-checkpoint node", lambda s: s.run(
        "CREATE (:Hospital {name: 'Bergamo', icuBeds: 12})")),
    Step("declare range index", lambda s: s.graph.create_range_index(
        "Hospital", "icuBeds")),
    Step("drop mutation trigger", lambda s: s.drop_trigger("NewMutation")),
    Step("delete a node", lambda s: s.run(
        "MATCH (m:Mutation {name: 'B.1.1.7'}) DELETE m")),
]


@pytest.fixture(scope="module")
def matrix():
    return run_workload(WORKLOAD)


def test_enumerates_enough_distinct_crash_points(matrix):
    indexes = {point.index for point in matrix.points}
    assert len(indexes) >= 10, "the workload must enumerate at least 10 crash points"
    # Every I/O family of the durability protocol must be interrupted:
    # WAL appends (torn records), fsyncs, snapshot writes, the atomic
    # snapshot rename, and WAL truncation.
    assert {"append", "fsync", "write", "replace", "truncate"} <= matrix.categories()


def test_crash_points_cover_both_halves_of_record_frames(matrix):
    labels = {point.label for point in matrix.points}
    assert any(label.endswith(":1/2") for label in labels)
    assert any(label.endswith(":2/2") for label in labels)


def test_exact_recovery_at_every_crash_point(matrix):
    failures = []
    for point, recovered in iter_assertions(matrix):
        if recovered != point.expected:
            failures.append(f"op {point.index} ({point.label}, {point.mode} mode)")
    assert not failures, "recovery diverged at crash points: " + ", ".join(failures)


def test_final_image_recovers_the_full_workload(matrix):
    final = matrix.points[-1]
    assert final.label == "end"
    session = recover(matrix.directory, final.files)
    try:
        assert capture(session) == matrix.final_state
        assert session.graph.property_indexes() == [("Hospital", "name")]
        assert session.graph.range_indexes() == [("Hospital", "icuBeds")]
        names = {t.name for t in session.registry.ordered()}
        assert names == {"AuditHospitals"}
        audit = next(t for t in session.registry.ordered() if t.name == "AuditHospitals")
        assert audit.enabled is False
    finally:
        session.close()


def test_torn_wal_tail_is_truncated_on_recovery(matrix):
    # A writeback crash between the two halves of a WAL append leaves a
    # torn half-frame on disk; recovery must cut it off (and survive).
    torn = [
        point
        for point in matrix.points
        if point.mode == MODE_WRITEBACK and point.label == "append:wal.log:2/2"
    ]
    assert torn, "workload produced no mid-record crash point"
    truncated = 0
    for point in torn:
        session = recover(matrix.directory, point.files)
        try:
            truncated += 1 if session.recovery.truncated_bytes > 0 else 0
            assert capture(session) == point.expected
        finally:
            session.close()
    assert truncated == len(torn)


def test_recovered_sessions_accept_new_writes(matrix):
    # Sample one crash point per mode from the middle of the workload and
    # make sure the recovered engine is fully usable afterwards.
    for mode in (MODE_LOST, MODE_WRITEBACK):
        midpoints = [p for p in matrix.points if p.mode == mode]
        point = midpoints[len(midpoints) // 2]
        session = recover(matrix.directory, point.files)
        try:
            before = session.graph.node_count()
            session.run("CREATE (:Hospital {name: 'Papa Giovanni XXIII'})")
            assert session.graph.node_count() == before + 1
        finally:
            session.close()


def test_group_commit_loses_only_unsynced_tail():
    # With group_commit_size=3 a power failure may lose the most recent
    # (acknowledged but unsynced) commits — but never a synced one, and the
    # log never replays garbage.  The harness computes the durability point
    # of each step from the observed fsync schedule, so exactness still
    # holds at every crash point.
    steps = [
        Step(f"create node {i}", (lambda i: lambda s: s.run(
            f"CREATE (:Item {{seq: {i}}})"))(i))
        for i in range(5)
    ]
    matrix = run_workload(steps, directory="/groupdb", group_commit_size=3)
    for point, recovered in iter_assertions(matrix):
        assert recovered == point.expected, (
            f"group-commit recovery diverged at op {point.index} "
            f"({point.label}, {point.mode} mode)"
        )
    # In lost mode there must exist a crash point where an *acknowledged*
    # commit is gone: the step completed (its append is in the op log) but
    # its group-deferred fsync had not yet run.  That is the documented
    # group-commit trade-off, and the harness must model it.
    lagging = [
        point
        for point in matrix.points
        if point.mode == MODE_LOST
        and point.label.startswith("append:wal.log")
        and point.expected != matrix.final_state
    ]
    assert lagging, "group commit never deferred durability"
