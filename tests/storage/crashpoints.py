"""Deterministic crash-injection harness for the durability layer.

The harness answers one question exhaustively: *if the process dies at any
point inside the durability layer's I/O sequence, does recovery restore
exactly the last committed state?*  It does so without ever throwing an
exception into the engine:

1. A workload (a list of :class:`Step` callables) runs once, to completion,
   on a :class:`CrashableIO` — an in-memory filesystem that keeps **two**
   byte images per file: the *durable* image (bytes covered by an fsync)
   and the *volatile* image (every byte written, as an OS page cache would
   hold it).  Before every state-changing I/O operation the harness freezes
   a copy of both images; each frozen pair is one enumerated crash point.
   Appends are split into two sub-operations so crash points *inside* a WAL
   record frame (torn records) are enumerated too.

2. After each step the harness captures the session's logical state (graph
   fingerprint + installed triggers).  The expected survivor of a crash at
   operation ``k`` follows mechanically from the operation log:

   * **lost** mode (power failure: unsynced bytes vanish) — a step's
     effects survive iff its WAL fsync happened strictly before ``k``;
   * **writeback** mode (the kernel flushed the page cache before dying:
     every written byte is on disk, including torn half-records) — a
     step's effects survive iff all of its WAL append sub-operations
     happened strictly before ``k``.

3. For every crash point the harness seeds a fresh ``MemoryIO`` with the
   frozen image and opens a brand-new ``GraphSession(path=...)`` on top —
   the exact recovery path a process restart would take — then compares
   the recovered state against the expectation.

Everything is deterministic: one workload run yields the complete crash
matrix, and the same workload always yields the same matrix.
"""

from __future__ import annotations

import datetime as _dt
import posixpath
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.graph.serialization import fingerprint
from repro.storage import MemoryIO
from repro.triggers.session import GraphSession

#: Fixed clock so trigger actions using datetime() stay deterministic.
CLOCK = lambda: _dt.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731

#: Crash-survival models (see module docstring).
MODE_LOST = "lost"
MODE_WRITEBACK = "writeback"
MODES = (MODE_LOST, MODE_WRITEBACK)


class CrashableIO(MemoryIO):
    """MemoryIO that models an OS page cache and freezes crash images.

    ``self.files`` (the inherited store) is the volatile image; ``durable``
    holds what an fsync has pinned.  Every mutating operation is labelled
    and counted, and the pre-operation state of both images is recorded in
    ``images`` — ``images[k]`` is what disk would hold if the process died
    immediately before operation ``k``.
    """

    def __init__(self) -> None:
        super().__init__()
        self.durable: dict[str, bytes] = {}
        self.labels: list[str] = []
        self.images: list[tuple[dict[str, bytes], dict[str, bytes]]] = []

    # -- crash-point bookkeeping ---------------------------------------

    @property
    def op_count(self) -> int:
        return len(self.labels)

    def _op(self, label: str) -> None:
        self.images.append((dict(self.durable), self._volatile_image()))
        self.labels.append(label)

    def _volatile_image(self) -> dict[str, bytes]:
        return {path: bytes(data) for path, data in self.files.items()}

    def finish(self) -> None:
        """Record the final (post-workload) image pair."""
        self.images.append((dict(self.durable), self._volatile_image()))

    def image(self, index: int, mode: str) -> dict[str, bytes]:
        """The simulated on-disk contents for a crash before op ``index``."""
        durable, volatile = self.images[index]
        if mode == MODE_LOST:
            return dict(durable)
        if mode == MODE_WRITEBACK:
            return dict(volatile)
        raise ValueError(f"unknown crash mode: {mode!r}")

    # -- mutating operations (counted) ---------------------------------

    def write_bytes(self, path: str, data: bytes) -> None:
        self._op(f"write:{posixpath.basename(path)}")
        super().write_bytes(path, data)

    def append_bytes(self, path: str, data: bytes) -> None:
        # Two sub-operations per append so a crash can land mid-frame.
        half = max(1, len(data) // 2)
        name = posixpath.basename(path)
        self._op(f"append:{name}:1/2")
        super().append_bytes(path, data[:half])
        self._op(f"append:{name}:2/2")
        super().append_bytes(path, data[half:])

    def fsync(self, path: str) -> None:
        self._op(f"fsync:{posixpath.basename(path)}")
        super().fsync(path)
        self.durable[path] = bytes(self.files[path])

    def replace(self, source: str, destination: str) -> None:
        self._op(f"replace:{posixpath.basename(destination)}")
        # Rename is an atomic metadata operation; the destination's durable
        # content is whatever of the source an fsync had pinned (the
        # checkpoint protocol always fsyncs the temporary before renaming).
        if source in self.durable:
            self.durable[destination] = self.durable.pop(source)
        super().replace(source, destination)

    def truncate(self, path: str, size: int) -> None:
        self._op(f"truncate:{posixpath.basename(path)}")
        super().truncate(path, size)

    def remove(self, path: str) -> None:
        self._op(f"remove:{posixpath.basename(path)}")
        self.durable.pop(path, None)
        super().remove(path)


@dataclass(frozen=True)
class Step:
    """One workload action; must commit at most one WAL record."""

    description: str
    action: Callable[[GraphSession], None]


@dataclass(frozen=True)
class LogicalState:
    """What must survive a crash: graph contents + trigger registry."""

    graph: str
    triggers: tuple[tuple[str, str, bool], ...]


@dataclass(frozen=True)
class CrashPoint:
    """One enumerated crash: die immediately before operation ``index``."""

    index: int
    label: str
    mode: str
    files: dict[str, bytes]
    expected: LogicalState

    @property
    def category(self) -> str:
        """Operation family the crash interrupts (``append``, ``fsync``...)."""
        return self.label.split(":", 1)[0]


@dataclass
class CrashMatrix:
    """The full crash enumeration of one workload run."""

    directory: str
    labels: list[str]
    points: list[CrashPoint] = field(default_factory=list)
    final_state: LogicalState | None = None

    def categories(self) -> set[str]:
        return {point.category for point in self.points}


def capture(session: GraphSession) -> LogicalState:
    """Snapshot a session's logical state for comparison."""
    return LogicalState(
        graph=fingerprint(session.graph),
        triggers=tuple(
            (t.name, t.definition.to_pg_trigger(), t.enabled)
            for t in session.registry.ordered()
        ),
    )


def recover(directory: str, files: dict[str, bytes]) -> GraphSession:
    """Open a fresh session over a frozen crash image (a process restart)."""
    return GraphSession(path=directory, storage_io=MemoryIO(files), clock=CLOCK)


def run_workload(
    steps: list[Step],
    directory: str = "/crashdb",
    group_commit_size: int = 1,
) -> CrashMatrix:
    """Run ``steps`` once, enumerating every crash point in both modes."""
    io = CrashableIO()
    session = GraphSession(
        path=directory,
        storage_io=io,
        clock=CLOCK,
        group_commit_size=group_commit_size,
    )
    states = [capture(session)]
    spans: list[tuple[int, int]] = []
    for step in steps:
        start = io.op_count
        step.action(session)
        spans.append((start, io.op_count))
        states.append(capture(session))
    session.close()
    io.finish()

    commit_ops = {
        mode: [_commit_op(io.labels, start, end, mode) for start, end in spans]
        for mode in MODES
    }
    matrix = CrashMatrix(directory=directory, labels=list(io.labels))
    matrix.final_state = states[-1]
    for index in range(len(io.images)):
        label = io.labels[index] if index < len(io.labels) else "end"
        for mode in MODES:
            survivors = [
                i for i, commit in enumerate(commit_ops[mode]) if commit < index
            ]
            expected = states[survivors[-1] + 1] if survivors else states[0]
            matrix.points.append(
                CrashPoint(
                    index=index,
                    label=label,
                    mode=mode,
                    files=io.image(index, mode),
                    expected=expected,
                )
            )
    return matrix


def _commit_op(labels: list[str], start: int, end: int, mode: str) -> int:
    """The operation index at which a step's effects become crash-proof.

    A crash before (or at) this index loses the step; a crash strictly
    after it keeps the step.  Steps that write no WAL record (checkpoints,
    reads) change no logical state, so any index before the step works.
    """
    wal = "wal.log"
    appends = [i for i in range(start, end) if labels[i].startswith(f"append:{wal}")]
    if not appends:
        return start - 1
    if mode == MODE_WRITEBACK:
        return appends[-1]
    syncs = [i for i in range(start, end) if labels[i] == f"fsync:{wal}"]
    if not syncs:
        # Group commit deferred the fsync past the step: the record only
        # becomes durable at a later step's (or close()'s) fsync.
        later = [i for i in range(end, len(labels)) if labels[i] == f"fsync:{wal}"]
        return later[0] if later else len(labels)
    return syncs[-1]


def iter_assertions(matrix: CrashMatrix) -> Iterator[tuple[CrashPoint, LogicalState]]:
    """Yield ``(point, recovered_state)`` for every enumerated crash point."""
    for point in matrix.points:
        recovered = recover(matrix.directory, point.files)
        try:
            yield point, capture(recovered)
        finally:
            recovered.close()
