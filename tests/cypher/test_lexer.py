"""Tests for the Cypher lexer."""

import pytest

from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type != TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        assert kinds("match MATCH Match") == [
            (TokenType.KEYWORD, "MATCH"),
            (TokenType.KEYWORD, "MATCH"),
            (TokenType.KEYWORD, "MATCH"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("NewIcuPat")[0] == (TokenType.IDENTIFIER, "NewIcuPat")

    def test_integers_and_floats(self):
        assert kinds("42 3.14 1e3 2.5e-1") == [
            (TokenType.INTEGER, "42"),
            (TokenType.FLOAT, "3.14"),
            (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2.5e-1"),
        ]

    def test_dotdot_is_not_a_float(self):
        values = [v for _, v in kinds("*1..3")]
        assert values == ["*", "1", "..", "3"]

    def test_property_access_keeps_integer_and_dot_separate(self):
        assert [v for _, v in kinds("n.age")] == ["n", ".", "age"]

    def test_strings_single_and_double_quotes(self):
        assert kinds("'Sacco' \"Meyer\"") == [
            (TokenType.STRING, "Sacco"),
            (TokenType.STRING, "Meyer"),
        ]

    def test_string_escapes(self):
        assert kinds(r"'it\'s'")[0] == (TokenType.STRING, "it's")
        assert kinds(r"'line\nbreak'")[0] == (TokenType.STRING, "line\nbreak")

    def test_parameters(self):
        assert kinds("$createdNodes")[0] == (TokenType.PARAMETER, "createdNodes")

    def test_backquoted_identifier(self):
        assert kinds("`weird name`")[0] == (TokenType.IDENTIFIER, "weird name")

    def test_operators(self):
        values = [v for _, v in kinds("<= >= <> = < > + - * / % ^ +=")]
        assert values == ["<=", ">=", "<>", "=", "<", ">", "+", "-", "*", "/", "%", "^", "+="]

    def test_punctuation(self):
        values = [v for _, v in kinds("()[]{},.:;|")]
        assert values == list("()[]{},.:;|")


class TestCommentsAndErrors:
    def test_line_comments_skipped(self):
        assert kinds("MATCH // comment\n(n)")[0] == (TokenType.KEYWORD, "MATCH")

    def test_block_comments_skipped(self):
        assert [v for _, v in kinds("1 /* two\nthree */ 4")] == ["1", "4"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("/* never closed")

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'open")

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("MATCH (n) WHERE n.x = @")

    def test_empty_parameter_name(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("$ x")

    def test_line_numbers_tracked(self):
        tokens = tokenize("MATCH (n)\nRETURN n")
        return_token = [t for t in tokens if t.value == "RETURN"][0]
        assert return_token.line == 2
