"""Tests for expression evaluation (three-valued logic, functions, access)."""

import datetime

import pytest

from repro.cypher import parse_expression
from repro.cypher.errors import CypherRuntimeError, CypherTypeError
from repro.cypher.expressions import EvaluationContext, evaluate
from repro.graph import PropertyGraph


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def context(graph):
    return EvaluationContext(
        graph=graph,
        parameters={"threshold": 50},
        clock=lambda: datetime.datetime(2021, 3, 14, 12, 0, 0),
    )


def run(text, row=None, context=None):
    return evaluate(parse_expression(text), row or {}, context)


class TestLiteralsAndArithmetic:
    def test_arithmetic(self, context):
        assert run("1 + 2 * 3", context=context) == 7
        assert run("10 / 4", context=context) == 2  # integer division
        assert run("10.0 / 4", context=context) == 2.5
        assert run("10 % 3", context=context) == 1
        assert run("2 ^ 3", context=context) == 8.0
        assert run("-(3 + 4)", context=context) == -7

    def test_division_by_zero(self, context):
        with pytest.raises(CypherRuntimeError):
            run("1 / 0", context=context)

    def test_string_concatenation(self, context):
        assert run("'a' + 'b'", context=context) == "ab"

    def test_list_concatenation(self, context):
        assert run("[1] + [2, 3]", context=context) == [1, 2, 3]

    def test_parameters(self, context):
        assert run("$threshold + 1", context=context) == 51

    def test_missing_parameter(self, context):
        with pytest.raises(CypherRuntimeError):
            run("$unknown", context=context)

    def test_unknown_variable(self, context):
        with pytest.raises(CypherRuntimeError):
            run("mystery", context=context)


class TestNullSemantics:
    def test_null_propagates_through_comparison(self, context):
        assert run("null = 1", context=context) is None
        assert run("null + 1", context=context) is None
        assert run("1 < null", context=context) is None

    def test_three_valued_and(self, context):
        assert run("false AND null", context=context) is False
        assert run("true AND null", context=context) is None
        assert run("true AND true", context=context) is True

    def test_three_valued_or(self, context):
        assert run("true OR null", context=context) is True
        assert run("false OR null", context=context) is None

    def test_xor_with_null(self, context):
        assert run("true XOR null", context=context) is None
        assert run("true XOR false", context=context) is True

    def test_not_null(self, context):
        assert run("NOT null", context=context) is None
        assert run("NOT false", context=context) is True

    def test_is_null(self, context):
        assert run("null IS NULL", context=context) is True
        assert run("1 IS NOT NULL", context=context) is True

    def test_in_with_null_element(self, context):
        assert run("1 IN [1, 2]", context=context) is True
        assert run("3 IN [1, 2]", context=context) is False
        assert run("3 IN [1, null]", context=context) is None
        assert run("3 IN null", context=context) is None


class TestComparisons:
    def test_equality_booleans_vs_ints(self, context):
        assert run("true = 1", context=context) is False

    def test_string_comparison(self, context):
        assert run("'Alpha' < 'Delta'", context=context) is True

    def test_incomparable_types(self, context):
        with pytest.raises(CypherTypeError):
            run("'a' < 3", context=context)

    def test_string_predicates(self, context):
        assert run("'Spike:D614G' STARTS WITH 'Spike'", context=context) is True
        assert run("'Spike:D614G' ENDS WITH 'G'", context=context) is True
        assert run("'Spike:D614G' CONTAINS 'D614'", context=context) is True


class TestGraphValueAccess:
    def test_property_access_on_node(self, graph, context):
        node = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 20})
        assert run("h.name", {"h": node}, context) == "Sacco"
        assert run("h.missing", {"h": node}, context) is None

    def test_property_access_reads_the_bound_snapshot(self, graph, context):
        node = graph.create_node(["Hospital"], {"icuBeds": 20})
        graph.set_node_property(node.id, "icuBeds", 5)
        # snapshots are read as bound: trigger OLD variables rely on frozen
        # pre-event values even after the store has moved on
        assert run("h.icuBeds", {"h": node}, context) == 20
        assert run("h.icuBeds", {"h": graph.node(node.id)}, context) == 5

    def test_property_access_on_deleted_node_uses_snapshot(self, graph, context):
        node = graph.create_node(["Hospital"], {"name": "Sacco"})
        graph.delete_node(node.id)
        assert run("h.name", {"h": node}, context) == "Sacco"

    def test_property_access_on_map(self, context):
        assert run("m.key", {"m": {"key": 7}}, context) == 7

    def test_label_predicate(self, graph, context):
        node = graph.create_node(["Patient", "IcuPatient"])
        assert run("p:IcuPatient", {"p": node}, context) is True
        assert run("p:IcuPatient:Patient", {"p": node}, context) is True
        assert run("p:Hospital", {"p": node}, context) is False

    def test_label_predicate_on_relationship(self, graph, context):
        a = graph.create_node()
        b = graph.create_node()
        rel = graph.create_relationship("TreatedAt", a.id, b.id)
        assert run("r:TreatedAt", {"r": rel}, context) is True
        assert run("r:Other", {"r": rel}, context) is False

    def test_functions_on_items(self, graph, context):
        node = graph.create_node(["Patient"], {"ssn": "X", "name": "Ada"})
        a = graph.create_node()
        rel = graph.create_relationship("Risk", node.id, a.id)
        assert run("id(n)", {"n": node}, context) == node.id
        assert run("labels(n)", {"n": node}, context) == ["Patient"]
        assert run("keys(n)", {"n": node}, context) == ["name", "ssn"]
        assert run("type(r)", {"r": rel}, context) == "Risk"
        assert run("startNode(r).ssn", {"r": rel}, context) == "X"
        assert run("endNode(r)", {"r": rel}, context).id == a.id


class TestFunctions:
    def test_coalesce(self, context):
        assert run("coalesce(null, null, 3)", context=context) == 3
        assert run("coalesce(null)", context=context) is None

    def test_size_and_length(self, context):
        assert run("size([1,2,3])", context=context) == 3
        assert run("size('abcd')", context=context) == 4

    def test_head_last(self, context):
        assert run("head([5, 6])", context=context) == 5
        assert run("last([5, 6])", context=context) == 6
        assert run("head([])", context=context) is None

    def test_numeric_functions(self, context):
        assert run("abs(-4)", context=context) == 4
        assert run("round(2.7)", context=context) == 3
        assert run("floor(2.7)", context=context) == 2.0
        assert run("ceil(2.1)", context=context) == 3.0
        assert run("sign(-9)", context=context) == -1

    def test_conversions(self, context):
        assert run("toInteger('42')", context=context) == 42
        assert run("toFloat('2.5')", context=context) == 2.5
        assert run("toString(7)", context=context) == "7"
        assert run("toInteger('not a number')", context=context) is None

    def test_string_functions(self, context):
        assert run("toUpper('abc')", context=context) == "ABC"
        assert run("toLower('ABC')", context=context) == "abc"
        assert run("trim('  x ')", context=context) == "x"
        assert run("split('a,b', ',')", context=context) == ["a", "b"]
        assert run("substring('abcdef', 1, 3)", context=context) == "bcd"
        assert run("replace('covid', 'c', 'C')", context=context) == "Covid"

    def test_datetime_uses_injected_clock(self, context):
        assert run("datetime()", context=context) == datetime.datetime(2021, 3, 14, 12, 0, 0)
        assert run("date()", context=context) == datetime.date(2021, 3, 14)
        assert run("timestamp()", context=context) == int(
            datetime.datetime(2021, 3, 14, 12, 0, 0).timestamp() * 1000
        )

    def test_datetime_parsing(self, context):
        assert run("datetime('2021-01-02T03:04:05')", context=context) == datetime.datetime(
            2021, 1, 2, 3, 4, 5
        )
        assert run("date('2021-01-02')", context=context) == datetime.date(2021, 1, 2)

    def test_range(self, context):
        assert run("range(1, 4)", context=context) == [1, 2, 3, 4]
        assert run("range(4, 1, -2)", context=context) == [4, 2]

    def test_unknown_function(self, context):
        with pytest.raises(CypherRuntimeError):
            run("nosuchfn(1)", context=context)

    def test_aggregate_outside_projection_rejected(self, context):
        with pytest.raises(CypherRuntimeError):
            run("sum(1)", context=context)


class TestCaseAndCollections:
    def test_case_searched(self, context):
        assert run("CASE WHEN 2 > 1 THEN 'yes' ELSE 'no' END", context=context) == "yes"
        assert run("CASE WHEN false THEN 'yes' END", context=context) is None

    def test_case_simple(self, context):
        assert run("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", context=context) == "two"

    def test_list_comprehension(self, context):
        assert run("[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]", context=context) == [20, 40]
        assert run("[x IN [1,2,3]]", context=context) == [1, 2, 3]

    def test_list_index(self, context):
        assert run("[10, 20, 30][1]", context=context) == 20
        assert run("[10, 20][5]", context=context) is None
        assert run("{a: 1}['a']", context=context) == 1

    def test_map_literal(self, context):
        assert run("{desc: 'alert', level: 1 + 1}", context=context) == {
            "desc": "alert",
            "level": 2,
        }
