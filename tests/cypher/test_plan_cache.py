"""Plan-cache behaviour: hits, index-epoch invalidation, virtual-label keys,
LRU bounds, and isolation of virtual-label state between executors."""

from repro.cypher import QueryExecutor, execute
from repro.cypher.planner import PLAN_CACHE, PlanCache
from repro.graph.store import PropertyGraph


def make_graph(count: int = 5) -> PropertyGraph:
    graph = PropertyGraph()
    for index in range(count):
        graph.create_node(["Item"], {"sku": index})
    return graph


QUERY = "MATCH (i:Item {sku: 3}) RETURN i.sku AS sku"


class TestCacheHits:
    def test_repeated_text_hits_plan_cache(self):
        cache = PlanCache()
        graph = make_graph()
        query1, plan1 = cache.get(QUERY, graph)
        query2, plan2 = cache.get(QUERY, graph)
        assert query1 is query2
        assert plan1 is plan2
        assert cache.stats.plan_hits == 1
        assert cache.stats.plan_misses == 1
        assert cache.stats.parse_misses == 1

    def test_parse_shared_across_graphs(self):
        cache = PlanCache()
        graph_a, graph_b = make_graph(), make_graph()
        query_a, plan_a = cache.get(QUERY, graph_a)
        query_b, plan_b = cache.get(QUERY, graph_b)
        assert query_a is query_b  # one parse
        assert plan_a is not plan_b  # but per-graph plans
        assert cache.stats.parse_misses == 1
        assert cache.stats.plan_misses == 2

    def test_lru_bound_is_enforced(self):
        cache = PlanCache(max_entries=4)
        graph = make_graph()
        for index in range(10):
            cache.get(f"MATCH (i:Item {{sku: {index}}}) RETURN i", graph)
        assert cache.plan_entry_count() <= 4


class TestIndexEpochInvalidation:
    def test_creating_index_evicts_stale_plan(self):
        cache = PlanCache()
        graph = make_graph()
        _, scan_plan = cache.get(QUERY, graph)
        assert "LabelScan" in scan_plan.plan_description()
        graph.create_property_index("Item", "sku")
        _, index_plan = cache.get(QUERY, graph)
        assert "IndexSeek(Item.sku = 3)" in index_plan.plan_description()
        assert cache.stats.plan_invalidations == 1

    def test_dropping_index_evicts_stale_plan(self):
        cache = PlanCache()
        graph = make_graph()
        graph.create_property_index("Item", "sku")
        _, index_plan = cache.get(QUERY, graph)
        assert index_plan.uses_index()
        graph.drop_property_index("Item", "sku")
        _, scan_plan = cache.get(QUERY, graph)
        assert not scan_plan.uses_index()
        # and execution through the global cache stays correct end to end
        assert execute(graph, QUERY).rows == [{"sku": 3}]

    def test_global_cache_execution_tracks_index_ddl(self):
        graph = make_graph()
        executor = QueryExecutor(graph)
        assert "LabelScan" in executor.plan_description(QUERY)
        graph.create_property_index("Item", "sku")
        assert "IndexSeek" in executor.plan_description(QUERY)
        assert executor.execute(QUERY).rows == [{"sku": 3}]
        graph.drop_property_index("Item", "sku")
        assert "LabelScan" in executor.plan_description(QUERY)
        assert executor.execute(QUERY).rows == [{"sku": 3}]


class TestVirtualLabelKeys:
    def test_virtual_label_names_key_the_cache(self):
        cache = PlanCache()
        graph = make_graph()
        _, without = cache.get("MATCH (n:NEWNODES) RETURN n", graph)
        _, with_virtual = cache.get(
            "MATCH (n:NEWNODES) RETURN n", graph, frozenset({"NEWNODES"})
        )
        assert without is not with_virtual
        assert with_virtual.pattern_plans()[0].start.kind == "virtual"
        assert without.pattern_plans()[0].start.kind != "virtual"

    def test_cached_plans_do_not_leak_virtual_label_ids_between_executors(self):
        graph = make_graph()
        first = QueryExecutor(graph, virtual_labels={"NEWNODES": {0}})
        second = QueryExecutor(graph, virtual_labels={"NEWNODES": {3, 4}})
        text = "MATCH (n:NEWNODES) RETURN n.sku AS sku"
        assert [r["sku"] for r in first.execute(text).rows] == [0]
        # same query text and virtual-label *name*: the plan is shared, the
        # id sets are each executor's own
        assert sorted(r["sku"] for r in second.execute(text).rows) == [3, 4]
        # an executor without the virtual label sees no such nodes at all
        assert QueryExecutor(graph).execute(text).rows == []

    def test_registering_virtual_label_replans(self):
        graph = make_graph()
        graph.create_property_index("Item", "sku")
        plain = QueryExecutor(graph)
        assert "IndexSeek" in plain.plan_description(QUERY)
        # a virtual label shadowing the pattern label must win over the index
        shadowed = QueryExecutor(graph, virtual_labels={"Item": {1}})
        assert "VirtualLabelScan(Item)" in shadowed.plan_description(QUERY)
        assert [r["sku"] for r in shadowed.execute(QUERY).rows] == []


class TestGlobalCacheMaintenance:
    def test_clear_resets_entries_and_stats(self):
        graph = make_graph()
        execute(graph, QUERY)
        PLAN_CACHE.clear()
        assert PLAN_CACHE.plan_entry_count() == 0
        assert PLAN_CACHE.stats.plan_hits == 0
        # still fully functional after a clear
        assert execute(graph, QUERY).rows == [{"sku": 3}]


class TestGraphTokenNeverAliases:
    """Regression: plan-cache identity must survive GC address reuse.

    The cache key once fell back to ``id(graph)`` for graph-likes without a
    ``plan_token``.  CPython recycles addresses, so a graph allocated after
    another died could alias its id and silently hit the dead graph's
    cached plans (e.g. an index scan against a graph with no index).
    Tokens now come from one process-wide monotonic counter.
    """

    def test_tokens_unique_across_gc_address_reuse(self):
        from repro.cypher.planner import _graph_token

        class SlotGraph:
            # No __dict__: the token cannot be pinned on the instance, which
            # is exactly the shape the id() fallback used to serve.
            __slots__ = ("__weakref__",)

        seen_tokens = set()
        seen_ids = set()
        id_reused = False
        for _ in range(200):
            graph = SlotGraph()
            if id(graph) in seen_ids:
                id_reused = True
            seen_ids.add(id(graph))
            token = _graph_token(graph)
            assert token not in seen_tokens, "token aliased a dead graph's"
            seen_tokens.add(token)
            del graph  # free the address for the next iteration
        # The point of the test: the allocator really did recycle at least
        # one address, and the tokens stayed unique anyway.
        assert id_reused, "allocator never reused an address; test is vacuous"

    def test_token_stable_while_object_lives(self):
        from repro.cypher.planner import _graph_token

        class SlotGraph:
            __slots__ = ("__weakref__",)

        graph = SlotGraph()
        assert _graph_token(graph) == _graph_token(graph)

        class PlainGraph:
            pass

        plain = PlainGraph()
        token = _graph_token(plain)
        assert plain.plan_token == token  # pinned on the instance
        assert _graph_token(plain) == token

    def test_unweakrefable_graph_gets_per_call_tokens(self):
        """No __dict__ and no __weakref__: the safe failure mode is a cache
        miss per call — never an aliased hit."""
        from repro.cypher.planner import _graph_token

        class SealedGraph:
            __slots__ = ()

        graph = SealedGraph()
        assert _graph_token(graph) != _graph_token(graph)

    def test_property_graphs_share_the_token_counter(self):
        from repro.cypher.planner import _graph_token

        class PlainGraph:
            pass

        token_between = _graph_token(PlainGraph())
        first = PropertyGraph().plan_token
        second = PropertyGraph().plan_token
        assert token_between < first < second  # one monotonic sequence

    def test_cache_does_not_serve_dead_graphs_plan(self):
        """End-to-end: a new graph planned right after another died must
        miss the cache, even though the dead graph's entries linger."""
        cache = PlanCache()
        graph = make_graph()
        graph.create_property_index("Item", "sku")
        cache.get(QUERY, graph)
        assert cache.stats.plan_misses == 1
        del graph

        newcomer = make_graph()  # same shape, no index
        _, plan = cache.get(QUERY, newcomer)
        assert cache.stats.plan_misses == 2
        assert cache.stats.plan_hits == 0
        assert "index" not in plan.plan_description().lower() or (
            "no index" in plan.plan_description().lower()
        )

    def test_graph_token_is_thread_safe(self):
        import threading

        from repro.cypher.planner import _graph_token

        class SlotGraph:
            __slots__ = ("__weakref__",)

        graph = SlotGraph()
        barrier = threading.Barrier(8, timeout=30)
        tokens: list[int] = []
        tokens_lock = threading.Lock()

        def worker():
            barrier.wait()
            token = _graph_token(graph)
            with tokens_lock:
                tokens.append(token)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert len(set(tokens)) == 1, f"racing threads minted {set(tokens)}"
