"""Plan-cache behaviour: hits, index-epoch invalidation, virtual-label keys,
LRU bounds, and isolation of virtual-label state between executors."""

from repro.cypher import QueryExecutor, execute
from repro.cypher.planner import PLAN_CACHE, PlanCache
from repro.graph.store import PropertyGraph


def make_graph(count: int = 5) -> PropertyGraph:
    graph = PropertyGraph()
    for index in range(count):
        graph.create_node(["Item"], {"sku": index})
    return graph


QUERY = "MATCH (i:Item {sku: 3}) RETURN i.sku AS sku"


class TestCacheHits:
    def test_repeated_text_hits_plan_cache(self):
        cache = PlanCache()
        graph = make_graph()
        query1, plan1 = cache.get(QUERY, graph)
        query2, plan2 = cache.get(QUERY, graph)
        assert query1 is query2
        assert plan1 is plan2
        assert cache.stats.plan_hits == 1
        assert cache.stats.plan_misses == 1
        assert cache.stats.parse_misses == 1

    def test_parse_shared_across_graphs(self):
        cache = PlanCache()
        graph_a, graph_b = make_graph(), make_graph()
        query_a, plan_a = cache.get(QUERY, graph_a)
        query_b, plan_b = cache.get(QUERY, graph_b)
        assert query_a is query_b  # one parse
        assert plan_a is not plan_b  # but per-graph plans
        assert cache.stats.parse_misses == 1
        assert cache.stats.plan_misses == 2

    def test_lru_bound_is_enforced(self):
        cache = PlanCache(max_entries=4)
        graph = make_graph()
        for index in range(10):
            cache.get(f"MATCH (i:Item {{sku: {index}}}) RETURN i", graph)
        assert cache.plan_entry_count() <= 4


class TestIndexEpochInvalidation:
    def test_creating_index_evicts_stale_plan(self):
        cache = PlanCache()
        graph = make_graph()
        _, scan_plan = cache.get(QUERY, graph)
        assert "LabelScan" in scan_plan.plan_description()
        graph.create_property_index("Item", "sku")
        _, index_plan = cache.get(QUERY, graph)
        assert "IndexSeek(Item.sku = 3)" in index_plan.plan_description()
        assert cache.stats.plan_invalidations == 1

    def test_dropping_index_evicts_stale_plan(self):
        cache = PlanCache()
        graph = make_graph()
        graph.create_property_index("Item", "sku")
        _, index_plan = cache.get(QUERY, graph)
        assert index_plan.uses_index()
        graph.drop_property_index("Item", "sku")
        _, scan_plan = cache.get(QUERY, graph)
        assert not scan_plan.uses_index()
        # and execution through the global cache stays correct end to end
        assert execute(graph, QUERY).rows == [{"sku": 3}]

    def test_global_cache_execution_tracks_index_ddl(self):
        graph = make_graph()
        executor = QueryExecutor(graph)
        assert "LabelScan" in executor.plan_description(QUERY)
        graph.create_property_index("Item", "sku")
        assert "IndexSeek" in executor.plan_description(QUERY)
        assert executor.execute(QUERY).rows == [{"sku": 3}]
        graph.drop_property_index("Item", "sku")
        assert "LabelScan" in executor.plan_description(QUERY)
        assert executor.execute(QUERY).rows == [{"sku": 3}]


class TestVirtualLabelKeys:
    def test_virtual_label_names_key_the_cache(self):
        cache = PlanCache()
        graph = make_graph()
        _, without = cache.get("MATCH (n:NEWNODES) RETURN n", graph)
        _, with_virtual = cache.get(
            "MATCH (n:NEWNODES) RETURN n", graph, frozenset({"NEWNODES"})
        )
        assert without is not with_virtual
        assert with_virtual.pattern_plans()[0].start.kind == "virtual"
        assert without.pattern_plans()[0].start.kind != "virtual"

    def test_cached_plans_do_not_leak_virtual_label_ids_between_executors(self):
        graph = make_graph()
        first = QueryExecutor(graph, virtual_labels={"NEWNODES": {0}})
        second = QueryExecutor(graph, virtual_labels={"NEWNODES": {3, 4}})
        text = "MATCH (n:NEWNODES) RETURN n.sku AS sku"
        assert [r["sku"] for r in first.execute(text).rows] == [0]
        # same query text and virtual-label *name*: the plan is shared, the
        # id sets are each executor's own
        assert sorted(r["sku"] for r in second.execute(text).rows) == [3, 4]
        # an executor without the virtual label sees no such nodes at all
        assert QueryExecutor(graph).execute(text).rows == []

    def test_registering_virtual_label_replans(self):
        graph = make_graph()
        graph.create_property_index("Item", "sku")
        plain = QueryExecutor(graph)
        assert "IndexSeek" in plain.plan_description(QUERY)
        # a virtual label shadowing the pattern label must win over the index
        shadowed = QueryExecutor(graph, virtual_labels={"Item": {1}})
        assert "VirtualLabelScan(Item)" in shadowed.plan_description(QUERY)
        assert [r["sku"] for r in shadowed.execute(QUERY).rows] == []


class TestGlobalCacheMaintenance:
    def test_clear_resets_entries_and_stats(self):
        graph = make_graph()
        execute(graph, QUERY)
        PLAN_CACHE.clear()
        assert PLAN_CACHE.plan_entry_count() == 0
        assert PLAN_CACHE.stats.plan_hits == 0
        # still fully functional after a clear
        assert execute(graph, QUERY).rows == [{"sku": 3}]
