"""Planner tests: access-path choice, EXPLAIN output, and — most importantly —
result equivalence with and without property indexes.

The index access path is advisory: it narrows the starting candidate set but
every candidate is still re-verified, so for any query the result must be
identical whether or not an index exists.  The corpus below covers inline
property maps, sargable WHERE conjuncts, parameters, null/missing-property
edge cases, OPTIONAL MATCH and pattern reversal.
"""

import pytest

from repro.cypher import QueryExecutor, execute, explain, plan_query, parse_query
from repro.cypher.planner import INDEX, LABEL, SCAN, VIRTUAL
from repro.graph.model import Node, Relationship
from repro.graph.store import PropertyGraph


def build_graph() -> PropertyGraph:
    graph = PropertyGraph()
    people = [
        ("alice", 30, "al"),
        ("bob", 40, None),
        ("carol", 30, "caz"),
        ("dave", 25, "d"),
        ("erin", 40, None),
    ]
    nodes = {}
    for name, age, nickname in people:
        properties = {"name": name, "age": age}
        if nickname is not None:
            properties["nickname"] = nickname
        nodes[name] = graph.create_node(["Person"], properties)
    graph.create_node(["City"], {"name": "milan"})
    graph.create_relationship("KNOWS", nodes["alice"].id, nodes["bob"].id, {"since": 30})
    graph.create_relationship("KNOWS", nodes["bob"].id, nodes["carol"].id)
    graph.create_relationship("KNOWS", nodes["dave"].id, nodes["carol"].id)
    graph.create_relationship("KNOWS", nodes["erin"].id, nodes["alice"].id)
    return graph


INDEX_PAIRS = [("Person", "name"), ("Person", "age"), ("Person", "nickname")]

#: (query, parameters) pairs whose results must not depend on indexing.
EQUIVALENCE_CORPUS = [
    ("MATCH (p:Person {name: 'alice'}) RETURN p.age AS age", None),
    ("MATCH (p:Person {name: 'nobody'}) RETURN p.age AS age", None),
    ("MATCH (p:Person) WHERE p.name = 'bob' RETURN p.age AS age", None),
    ("MATCH (p:Person) WHERE p.name = $name RETURN p.age AS age", {"name": "carol"}),
    ("MATCH (p:Person) WHERE p.age = 30 RETURN p.name AS name", None),
    ("MATCH (p:Person) WHERE p.age = 30 AND p.name = 'carol' RETURN p.name AS name", None),
    ("MATCH (p:Person {name: 'alice'})-[:KNOWS]->(q:Person) RETURN q.name AS name", None),
    ("MATCH (a:Person)-[:KNOWS]->(b:Person {name: 'carol'}) RETURN a.name AS name", None),
    ("MATCH (a)-[:KNOWS]->(b:Person {age: 30}) RETURN a.name AS name, b.name AS other", None),
    # Inline null map entries match *missing* properties; the planner must
    # not turn them into (empty) index lookups.
    ("MATCH (p:Person {nickname: null}) RETURN p.name AS name", None),
    # WHERE-level null equality filters every row under three-valued logic.
    ("MATCH (p:Person) WHERE p.nickname = null RETURN p.name AS name", None),
    ("MATCH (p:Person) WHERE p.nickname = $nick RETURN p.name AS name", {"nick": None}),
    ("MATCH (p:Person) WHERE p.nickname = 'al' RETURN p.name AS name", None),
    ("OPTIONAL MATCH (p:Person {name: 'zed'}) RETURN p", None),
    ("MATCH (p:Person) WHERE p.name = 'alice' OR p.name = 'bob' RETURN p.name AS name", None),
    ("MATCH (p:Person {age: 40}) RETURN count(*) AS n", None),
    ("MERGE (p:Person {name: 'alice'}) RETURN p.age AS age", None),
    # Relationship property maps referencing a pattern variable: the planner
    # must not reverse the traversal (the forward order binds `a` first).
    (
        "MATCH (a:Person)-[r:KNOWS {since: a.age}]->(b:Person {name: 'bob'}) "
        "RETURN a.name AS name",
        None,
    ),
    (
        "MATCH (a:Person)-[r:KNOWS {since: 30}]->(b:Person {name: 'bob'}) "
        "RETURN a.name AS name",
        None,
    ),
]


def canonical(value):
    if isinstance(value, Node):
        return ("node", value.id, tuple(sorted(value.labels)), tuple(sorted(value.properties.items())))
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, list):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    return value


def run_rows(graph, query, parameters):
    result = execute(graph, query, parameters=parameters)
    return sorted(
        (tuple(sorted((k, canonical(v)) for k, v in row.items())) for row in result.rows),
        key=repr,
    )


class TestIndexEquivalence:
    @pytest.mark.parametrize("query,parameters", EQUIVALENCE_CORPUS)
    def test_results_identical_with_and_without_indexes(self, query, parameters):
        plain = build_graph()
        indexed = build_graph()
        for label, prop in INDEX_PAIRS:
            indexed.create_property_index(label, prop)
        assert run_rows(plain, query, parameters) == run_rows(indexed, query, parameters)

    def test_index_dropped_mid_session_falls_back_to_scan(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        query = "MATCH (p:Person {name: 'alice'}) RETURN p.age AS age"
        assert execute(graph, query).rows == [{"age": 30}]
        graph.drop_property_index("Person", "name")
        assert execute(graph, query).rows == [{"age": 30}]

    def test_missing_parameter_behaviour_independent_of_index(self):
        # With zero candidates, the unindexed path never evaluates WHERE, so
        # a missing $parameter yields empty rows; an index must not change
        # that to an eager CypherRuntimeError.
        graph = PropertyGraph()
        query = "MATCH (p:Ghost) WHERE p.k = $v RETURN p"
        assert execute(graph, query).rows == []
        graph.create_property_index("Ghost", "k")
        assert execute(graph, query).rows == []
        # and with candidates present, both paths raise the same error
        graph.create_node(["Ghost"], {"k": 1})
        with pytest.raises(Exception, match="missing query parameter"):
            execute(graph, query)

    def test_unhashable_equality_value_falls_back_to_scan(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        query = "MATCH (p:Person) WHERE p.name = $v RETURN p.name AS name"
        # a dict parameter cannot probe the index; result must match the
        # unindexed semantics (no rows) instead of raising TypeError
        assert execute(graph, query, parameters={"v": {"a": 1}}).rows == []
        assert execute(graph, query, parameters={"v": "alice"}).rows == [{"name": "alice"}]

    def test_updates_visible_through_index_path(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        execute(graph, "MATCH (p:Person {name: 'alice'}) SET p.name = 'alicia'")
        assert execute(graph, "MATCH (p:Person {name: 'alice'}) RETURN p").rows == []
        rows = execute(graph, "MATCH (p:Person {name: 'alicia'}) RETURN p.age AS age").rows
        assert rows == [{"age": 30}]


class TestAccessPathChoice:
    def test_inline_map_uses_property_index(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(parse_query("MATCH (p:Person {name: 'alice'}) RETURN p"), graph)
        [pattern_plan] = plan.pattern_plans()
        assert pattern_plan.start.kind == INDEX
        assert pattern_plan.start.label == "Person"
        assert pattern_plan.start.property == "name"
        assert plan.uses_index()

    def test_sargable_where_uses_property_index(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(
            parse_query("MATCH (p:Person) WHERE p.name = $name RETURN p"), graph
        )
        assert plan.pattern_plans()[0].start.kind == INDEX

    def test_non_sargable_predicates_do_not_use_index(self):
        graph = build_graph()
        graph.create_property_index("Person", "age")
        for where in ("p.age > 30", "p.age = q.age", "p.age = 30 OR p.name = 'x'"):
            plan = plan_query(
                parse_query(f"MATCH (p:Person), (q:Person) WHERE {where} RETURN p"), graph
            )
            assert plan.pattern_plans()[0].start.kind == LABEL, where

    def test_unindexed_label_scans_and_bare_pattern_full_scans(self):
        graph = build_graph()
        plan = plan_query(parse_query("MATCH (p:Person {name: 'alice'}) RETURN p"), graph)
        assert plan.pattern_plans()[0].start.kind == LABEL
        plan = plan_query(parse_query("MATCH (x) RETURN x"), graph)
        assert plan.pattern_plans()[0].start.kind == SCAN
        assert not plan.uses_index()

    def test_virtual_label_takes_priority_over_index(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(
            parse_query("MATCH (p:NEWNODES {name: 'alice'}) RETURN p"),
            graph,
            virtual_labels={"NEWNODES"},
        )
        assert plan.pattern_plans()[0].start.kind == VIRTUAL

    def test_pattern_reversal_starts_from_indexed_end(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(
            parse_query("MATCH (a)-[:KNOWS]->(b:Person {name: 'carol'}) RETURN a"), graph
        )
        [pattern_plan] = plan.pattern_plans()
        assert pattern_plan.reversed
        assert pattern_plan.start.kind == INDEX
        # reversal flips the relationship direction so semantics are intact
        rows = execute(
            graph, "MATCH (a)-[:KNOWS]->(b:Person {name: 'carol'}) RETURN a.name AS name"
        ).rows
        assert sorted(row["name"] for row in rows) == ["bob", "dave"]

    def test_dynamic_property_maps_block_reversal(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(
            parse_query(
                "MATCH (a:Person)-[r:KNOWS {since: a.age}]->(b:Person {name: 'bob'}) RETURN a"
            ),
            graph,
        )
        assert not plan.pattern_plans()[0].reversed
        rows = execute(
            graph,
            "MATCH (a:Person)-[r:KNOWS {since: a.age}]->(b:Person {name: 'bob'}) "
            "RETURN a.name AS name",
        ).rows
        assert [row["name"] for row in rows] == ["alice"]

    def test_named_paths_are_never_reversed(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        plan = plan_query(
            parse_query("MATCH p = (a)-[:KNOWS]->(b:Person {name: 'carol'}) RETURN p"), graph
        )
        assert not plan.pattern_plans()[0].reversed

    def test_variable_length_patterns_are_never_reversed(self):
        # A var-length relationship variable binds the hop *list* in
        # traversal order; reversal would flip it and change results.
        graph = PropertyGraph()
        a = graph.create_node(["A"], {})
        m = graph.create_node([], {})
        b = graph.create_node(["B"], {"k": 1})
        for _ in range(20):
            graph.create_node(["A"], {})
        first = graph.create_relationship("R", a.id, m.id)
        second = graph.create_relationship("R", m.id, b.id)
        graph.create_property_index("B", "k")
        query = "MATCH (x:A)-[r:R*2..2]->(y:B) WHERE y.k = 1 RETURN r"
        plan = plan_query(parse_query(query), graph)
        assert not plan.pattern_plans()[0].reversed
        [row] = execute(graph, query).rows
        assert [rel.id for rel in row["r"]] == [first.id, second.id]


class TestJoinOrdering:
    def ordered_graph(self) -> PropertyGraph:
        graph = PropertyGraph()
        hub = graph.create_node(["Small"], {"k": 7})
        for index in range(200):
            n = graph.create_node(["Big"], {"v": index})
            if index < 4:
                graph.create_relationship("R", hub.id, n.id)
        return graph

    def test_cheapest_pattern_planned_first(self):
        graph = self.ordered_graph()
        plan = plan_query(
            parse_query("MATCH (a:Big), (b:Small) RETURN a, b"), graph
        )
        [join_order] = plan.join_orders()
        assert join_order.order == (1, 0)
        assert join_order.reordered
        assert join_order.cartesian
        # estimates are reported in clause order
        assert join_order.estimated_rows[0] == 200.0
        assert join_order.estimated_rows[1] == 1.0

    def test_clause_order_kept_when_already_cheapest(self):
        graph = self.ordered_graph()
        plan = plan_query(
            parse_query("MATCH (b:Small), (a:Big) RETURN a, b"), graph
        )
        [join_order] = plan.join_orders()
        assert join_order.order == (0, 1)
        assert not join_order.reordered

    def test_connected_pattern_beats_cheaper_disconnected_one(self):
        graph = self.ordered_graph()
        graph.create_node(["Tiny"], {})
        # after (s:Small), the connected Big expansion is preferred over
        # the cheaper-but-disconnected Tiny pattern
        plan = plan_query(
            parse_query("MATCH (t:Tiny), (s:Small)-[:R]->(x:Big), (s)-[:R]->(y) RETURN t"),
            graph,
        )
        [join_order] = plan.join_orders()
        assert join_order.order[-1] == 0
        assert set(join_order.order[:2]) == {1, 2}
        assert join_order.cartesian

    def test_variable_bound_by_earlier_clause_makes_pattern_near_free(self):
        graph = self.ordered_graph()
        query = parse_query(
            "MATCH (s:Small) MATCH (b:Big), (s)-[:R]->(x) RETURN b, x"
        )
        plan = plan_query(query, graph)
        [join_order] = plan.join_orders()
        # (s)-[:R]->(x) starts from the bound s, so it goes first even
        # though its standalone estimate is not the smallest
        assert join_order.order == (1, 0)

    def test_single_pattern_clauses_have_no_join_order(self):
        graph = self.ordered_graph()
        plan = plan_query(parse_query("MATCH (a:Big) MATCH (b:Small) RETURN a, b"), graph)
        assert plan.join_orders() == []
        assert plan.join_order_for(plan.query.clauses[0]) is None

    def test_cross_pattern_property_reference_declines_reordering(self):
        # (b:B {x: a.y}) reads a variable bound by a sibling pattern, so
        # running it first would raise instead of staying advisory; the
        # planner must keep the written order for such clauses.
        graph = PropertyGraph()
        for index in range(20):
            graph.create_node(["A"], {"y": 3})
        graph.create_node(["B"], {"x": 3})
        query = "MATCH (a:A), (b:B {x: a.y}) RETURN a.y AS ay"
        plan = plan_query(parse_query(query), graph)
        assert plan.join_orders() == []
        ordered = QueryExecutor(graph).execute(query).rows
        naive = QueryExecutor(graph, join_ordering=False).execute(query).rows
        assert ordered == naive
        assert len(ordered) == 20 and all(row["ay"] == 3 for row in ordered)

    def test_intra_pattern_forward_reference_declines_reordering(self):
        # (b:B {y: a.z})-[:R]->(a) reads `a` before its own trailing
        # element could bind it, so only the sibling (a:A) running first
        # makes it evaluable — the clause must keep its written order.
        graph = PropertyGraph()
        targets = [graph.create_node(["A"], {"z": 9}) for _ in range(50)]
        b = graph.create_node(["B"], {"y": 9})
        graph.create_relationship("R", b.id, targets[0].id)
        query = "MATCH (a:A), (b:B {y: a.z})-[:R]->(a) RETURN b.y AS y"
        plan = plan_query(parse_query(query), graph)
        assert plan.join_orders() == []
        ordered = QueryExecutor(graph).execute(query).rows
        naive = QueryExecutor(graph, join_ordering=False).execute(query).rows
        assert ordered == naive == [{"y": 9}]

    def test_within_pattern_backward_reference_still_reorders(self):
        # (a:A)-[r:R {since: a.age}]->(b) reads only a preceding element
        # of its own pattern: safe under any clause-level order
        graph = self.ordered_graph()
        query = parse_query(
            "MATCH (x:Big)-[r:R {w: x.v}]->(y), (s:Small) RETURN s"
        )
        plan = plan_query(query, graph)
        assert len(plan.join_orders()) == 1

    def test_reference_satisfied_by_earlier_clause_still_reorders(self):
        graph = self.ordered_graph()
        # a is bound by the previous clause, so {v: a.k} is evaluable in
        # any order and the clause may still be reordered
        query = parse_query(
            "MATCH (a:Small) MATCH (x:Big {v: a.k}), (t:Small) RETURN x, t"
        )
        plan = plan_query(query, graph)
        [join_order] = plan.join_orders()
        assert join_order.order == (1, 0)

    def test_join_order_is_advisory_for_results(self):
        graph = self.ordered_graph()
        query = "MATCH (a:Big), (b:Small {k: 7}) WHERE a.v < 2 RETURN a.v AS v, b.k AS k"
        ordered = QueryExecutor(graph).execute(query).rows
        naive = QueryExecutor(graph, join_ordering=False).execute(query).rows
        assert sorted(r["v"] for r in ordered) == sorted(r["v"] for r in naive) == [0, 1]


class TestPhysicalIndexInvalidation:
    """Ordered and relationship indexes must flow through ``index_epoch``/
    ``plan_token`` so the global plan cache never serves a plan against a
    dropped or stale index."""

    def range_graph(self) -> PropertyGraph:
        graph = PropertyGraph()
        for value in range(30):
            graph.create_node(["Item"], {"v": value})
        return graph

    def test_range_index_ddl_bumps_epoch(self):
        graph = self.range_graph()
        epoch = graph.index_epoch
        graph.create_range_index("Item", "v")
        assert graph.index_epoch == epoch + 1
        graph.drop_range_index("Item", "v")
        assert graph.index_epoch == epoch + 2

    def test_relationship_index_ddl_bumps_epoch(self):
        graph = self.range_graph()
        epoch = graph.index_epoch
        graph.create_relationship_property_index("KNOWS", "since")
        assert graph.index_epoch == epoch + 1
        graph.drop_relationship_property_index("KNOWS", "since")
        assert graph.index_epoch == epoch + 2

    def test_cached_plan_replans_after_range_index_create_and_drop(self):
        graph = self.range_graph()
        executor = QueryExecutor(graph)
        query = "MATCH (n:Item) WHERE n.v > 25 RETURN n.v AS v"
        assert "LabelScan" in executor.plan_description(query)
        graph.create_range_index("Item", "v")
        description = executor.plan_description(query)
        assert "IndexRangeSeek(Item.v > 25)" in description
        assert sorted(r["v"] for r in executor.execute(query).rows) == [26, 27, 28, 29]
        graph.drop_range_index("Item", "v")
        assert "IndexRangeSeek" not in executor.plan_description(query)
        assert sorted(r["v"] for r in executor.execute(query).rows) == [26, 27, 28, 29]

    def test_cached_plan_replans_after_rel_index_create_and_drop(self):
        graph = self.range_graph()
        nodes = list(graph.nodes())
        graph.create_relationship("KNOWS", nodes[0].id, nodes[1].id, {"since": 1})
        graph.create_relationship("KNOWS", nodes[1].id, nodes[2].id, {"since": 2})
        executor = QueryExecutor(graph)
        query = "MATCH (a)-[r:KNOWS {since: 1}]->(b) RETURN b.v AS v"
        assert "RelIndexSeek" not in executor.plan_description(query)
        baseline = executor.execute(query).rows
        graph.create_relationship_property_index("KNOWS", "since")
        assert "RelIndexSeek(KNOWS.since = 1)" in executor.plan_description(query)
        assert executor.execute(query).rows == baseline
        graph.drop_relationship_property_index("KNOWS", "since")
        assert "RelIndexSeek" not in executor.plan_description(query)
        assert executor.execute(query).rows == baseline

    def test_stale_plan_on_one_graph_never_leaks_to_another(self):
        # plan tokens keep per-graph entries apart even for identical text
        indexed = self.range_graph()
        indexed.create_range_index("Item", "v")
        plain = self.range_graph()
        query = "MATCH (n:Item) WHERE n.v > 25 RETURN n"
        assert "IndexRangeSeek" in QueryExecutor(indexed).plan_description(query)
        assert "IndexRangeSeek" not in QueryExecutor(plain).plan_description(query)


class TestExplain:
    def test_plan_description_shows_index_lookup(self):
        graph = build_graph()
        graph.create_property_index("Person", "name")
        description = explain("MATCH (p:Person {name: 'alice'}) RETURN p", graph)
        assert "IndexSeek(Person.name = 'alice')" in description

    def test_executor_plan_description_matches_execution(self):
        graph = build_graph()
        graph.create_property_index("Person", "age")
        executor = QueryExecutor(graph)
        description = executor.plan_description(
            "MATCH (p:Person) WHERE p.age = $age RETURN p"
        )
        assert "IndexSeek(Person.age = $age)" in description

    def test_plan_description_without_match_patterns(self):
        graph = build_graph()
        assert "no MATCH patterns" in explain("RETURN 1 AS one", graph)

    def test_plan_description_reports_multi_pattern_order_and_estimates(self):
        graph = build_graph()
        description = explain(
            "MATCH (p:Person), (c:City {name: 'milan'}) RETURN p, c", graph
        )
        # one est~ annotation per pattern line, plus the join-order line
        # repeating the estimate of every pattern in chosen order
        assert "JoinOrder(pattern[1] est~1, pattern[0] est~5)" in description
        assert "LabelScan(Person) est~5 rows" in description
        assert "LabelScan(City) est~1 rows" in description

    def test_explain_reports_index_selectivity_as_estimate(self):
        graph = build_graph()
        graph.create_property_index("Person", "age")
        description = explain("MATCH (p:Person {age: 30}) RETURN p", graph)
        # ages 30,30,40,25,40 -> 5 entries over 3 distinct values
        assert "IndexSeek(Person.age = 30) est~1.67 rows" in description
