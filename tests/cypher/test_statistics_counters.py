"""End-to-end audit of the QueryStatistics counters.

Each counter must reflect *actual* changes: a SET of an already-present
label or a REMOVE of an absent property is a no-op and must not count
(the counters feed ResultSummary and the comparison benchmarks, where
phantom updates would be indistinguishable from real ones).
"""

from __future__ import annotations

import pytest

from repro.cypher import execute
from repro.graph import PropertyGraph


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    node = g.create_node(["Person"], {"name": "Ada"})
    other = g.create_node(["Person"], {"name": "Grace"})
    g.create_relationship("Knows", node.id, other.id, {"since": 1970})
    return g


def stats(graph, query):
    return execute(graph, query).statistics


class TestLabelCounters:
    def test_adding_a_new_label_counts(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p:Pioneer")
        assert s.labels_added == 1

    def test_adding_a_present_label_does_not_count(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p:Person")
        assert s.labels_added == 0

    def test_removing_a_present_label_counts(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) REMOVE p:Person")
        assert s.labels_removed == 1

    def test_removing_an_absent_label_does_not_count(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) REMOVE p:Ghost")
        assert s.labels_removed == 0

    def test_create_counts_every_initial_label(self, graph):
        s = stats(graph, "CREATE (:A:B:C)")
        assert s.labels_added == 3


class TestPropertyCounters:
    def test_setting_a_node_property_counts(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p.born = 1815")
        assert s.properties_set == 1

    def test_setting_a_relationship_property_counts(self, graph):
        s = stats(graph, "MATCH (:Person)-[k:Knows]->(:Person) SET k.weight = 2")
        assert s.properties_set == 1

    def test_removing_a_present_relationship_property_counts(self, graph):
        s = stats(graph, "MATCH (:Person)-[k:Knows]->(:Person) REMOVE k.since")
        assert s.properties_removed == 1

    def test_removing_an_absent_property_does_not_count(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) REMOVE p.ghost")
        assert s.properties_removed == 0

    def test_set_null_on_absent_property_does_not_count(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p.ghost = null")
        assert s.properties_removed == 0

    def test_set_null_on_present_property_counts_as_removal(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p.name = null")
        assert s.properties_removed == 1
        assert s.properties_set == 0

    def test_replace_map_counts_removals_of_dropped_keys(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) SET p = {role: 'math'}")
        # 'name' dropped (1 removal), 'role' written (1 set)
        assert s.properties_removed == 1
        assert s.properties_set == 1


class TestDeleteCounters:
    def test_detach_delete_counts_node_and_relationships(self, graph):
        s = stats(graph, "MATCH (p:Person {name: 'Ada'}) DETACH DELETE p")
        assert s.nodes_deleted == 1
        assert s.relationships_deleted == 1

    def test_counters_surface_in_as_dict(self, graph):
        s = stats(graph, "CREATE (:A {x: 1})")
        as_dict = s.as_dict()
        assert as_dict["nodes_created"] == 1
        assert as_dict["labels_added"] == 1
        assert as_dict["properties_set"] == 1
