"""Property-based differential tests for the path-query subsystem.

The naive recursive enumerator (``naive_paths=True``) is the executable
specification.  These tests generate random directed multigraphs — with
cycles, self-loops and parallel edges — and assert that every execution
route returns *identical rows in identical order*:

* naive recursion  ==  iterative DFS (the default ``VarLengthExpand``);
* naive recursion  ==  reachability-accelerated scans (when the index
  accepts the graph; on decline the comparison still holds via fallback);
* naive shortestPath  ==  bidirectional-BFS shortestPath;
* mutating the graph after an accelerated query (invalidation + rebuild)
  never changes results.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cypher import QueryExecutor
from repro.graph import PropertyGraph

MAX_NODES = 7


@st.composite
def random_graphs(draw):
    """A small directed multigraph with one relationship type ``R``.

    Edges are drawn with replacement, so self-loops, cycles and parallel
    edges all occur — exactly the shapes that stress relationship
    uniqueness and the accelerator's decline logic.
    """
    node_count = draw(st.integers(min_value=2, max_value=MAX_NODES))
    edge_count = draw(st.integers(min_value=0, max_value=node_count * 2))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),
                st.integers(min_value=0, max_value=node_count - 1),
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    graph = PropertyGraph()
    nodes = [graph.create_node(["N"], {"i": i}) for i in range(node_count)]
    for src, dst in edges:
        graph.create_relationship("R", nodes[src].id, nodes[dst].id)
    return graph


@st.composite
def forest_graphs(draw):
    """A forest (each node has at most one parent) — accelerator-friendly."""
    node_count = draw(st.integers(min_value=2, max_value=MAX_NODES))
    # parent[i] < i guarantees acyclicity; None makes node i a root
    parents = [
        draw(st.one_of(st.none(), st.integers(min_value=0, max_value=i - 1)))
        for i in range(1, node_count)
    ]
    graph = PropertyGraph()
    nodes = [graph.create_node(["N"], {"i": i}) for i in range(node_count)]
    for child_index, parent_index in enumerate(parents, start=1):
        if parent_index is not None:
            graph.create_relationship("R", nodes[parent_index].id, nodes[child_index].id)
    return graph


VARLEN_QUERIES = [
    "MATCH (a {i: 0})-[:R*]->(b) RETURN b.i AS i",
    "MATCH (a {i: 0})-[:R*0..3]->(b) RETURN b.i AS i",
    "MATCH (a {i: 0})-[:R*2..4]->(b) RETURN b.i AS i",
    "MATCH (a {i: 1})<-[:R*1..3]-(b) RETURN b.i AS i",
    "MATCH (a {i: 0})-[:R*1..3]-(b) RETURN b.i AS i",
    "MATCH p = (a {i: 0})-[:R*1..3]->(b) RETURN [n IN nodes(p) | n.i] AS walk, "
    "[r IN relationships(p) | id(r)] AS ids",
]

SHORTEST_QUERIES = [
    "MATCH p = shortestPath((a {i: 0})-[:R*..4]->(b {i: 1})) "
    "RETURN length(p) AS len, [r IN relationships(p) | id(r)] AS ids",
    "MATCH p = shortestPath((a {i: 0})-[:R*..4]->(b)) "
    "RETURN b.i AS i, length(p) AS len, [r IN relationships(p) | id(r)] AS ids",
    "MATCH p = shortestPath((a {i: 0})-[:R*..3]-(b {i: 1})) RETURN length(p) AS len",
    "MATCH p = shortestPath((a {i: 0})-[:R*0..3]->(b {i: 0})) RETURN length(p) AS len",
]


def run(graph, query, **kwargs):
    return list(QueryExecutor(graph, **kwargs).execute(query))


@settings(max_examples=60, deadline=None)
@given(graph=random_graphs(), query=st.sampled_from(VARLEN_QUERIES))
def test_iterative_matches_naive(graph, query):
    assert run(graph, query) == run(graph, query, naive_paths=True)


@settings(max_examples=60, deadline=None)
@given(graph=random_graphs(), query=st.sampled_from(VARLEN_QUERIES))
def test_accelerated_matches_naive(graph, query):
    # Declaring the index must never change results: on cyclic/multi-parent
    # graphs the build declines and execution falls back to the DFS route.
    expected = run(graph, query, naive_paths=True)
    graph.create_reachability_index("R")
    assert run(graph, query) == expected


@settings(max_examples=60, deadline=None)
@given(graph=forest_graphs(), query=st.sampled_from(VARLEN_QUERIES))
def test_accelerated_forest_matches_naive(graph, query):
    expected = run(graph, query, naive_paths=True)
    graph.create_reachability_index("R")
    index = graph.reachability_index("R")
    assert run(graph, query) == expected
    assert index.ensure(graph)  # forests must never decline


@settings(max_examples=60, deadline=None)
@given(graph=random_graphs(), query=st.sampled_from(SHORTEST_QUERIES))
def test_shortest_fast_route_matches_naive(graph, query):
    assert run(graph, query) == run(graph, query, naive_paths=True)


@settings(max_examples=40, deadline=None)
@given(
    graph=forest_graphs(),
    query=st.sampled_from(VARLEN_QUERIES),
    extra_edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=MAX_NODES - 1),
            st.integers(min_value=0, max_value=MAX_NODES - 1),
        ),
        max_size=3,
    ),
)
def test_invalidation_never_changes_results(graph, query, extra_edges):
    """Mutate after an accelerated query; rerun must equal a fresh naive run."""
    graph.create_reachability_index("R")
    run(graph, query)  # builds the index
    node_ids = sorted(node.id for node in graph.nodes())
    for src, dst in extra_edges:
        graph.create_relationship(
            "R", node_ids[src % len(node_ids)], node_ids[dst % len(node_ids)]
        )
    assert run(graph, query) == run(graph, query, naive_paths=True)
