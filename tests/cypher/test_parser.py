"""Tests for the Cypher parser."""

import pytest

from repro.cypher import parse_expression, parse_query
from repro.cypher.ast import (
    BinaryOp,
    CallClause,
    CaseExpression,
    CountStar,
    CreateClause,
    DeleteClause,
    ExistsPattern,
    ForeachClause,
    FunctionCall,
    LabelPredicate,
    Literal,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PropertyAccess,
    RelationshipPattern,
    RemoveClause,
    ReturnClause,
    SetClause,
    SetLabelsItem,
    SetPropertyItem,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.errors import CypherSyntaxError, UnsupportedFeatureError


class TestPatternParsing:
    def test_simple_node_pattern(self):
        query = parse_query("MATCH (n:Hospital {name: 'Sacco'}) RETURN n")
        match = query.clauses[0]
        node = match.patterns[0].elements[0]
        assert isinstance(node, NodePattern)
        assert node.variable == "n"
        assert node.labels == ("Hospital",)
        assert node.properties[0][0] == "name"

    def test_anonymous_node_with_multiple_labels(self):
        query = parse_query("MATCH (:HospitalizedPatient:IcuPatient) RETURN count(*)")
        node = query.clauses[0].patterns[0].elements[0]
        assert node.variable is None
        assert node.labels == ("HospitalizedPatient", "IcuPatient")

    def test_relationship_directions(self):
        out_rel = parse_query("MATCH (a)-[:R]->(b) RETURN a").clauses[0].patterns[0].elements[1]
        in_rel = parse_query("MATCH (a)<-[:R]-(b) RETURN a").clauses[0].patterns[0].elements[1]
        both_rel = parse_query("MATCH (a)-[:R]-(b) RETURN a").clauses[0].patterns[0].elements[1]
        assert out_rel.direction == "out"
        assert in_rel.direction == "in"
        assert both_rel.direction == "both"

    def test_relationship_variable_and_types(self):
        rel = parse_query("MATCH (a)-[r:X|Y]->(b) RETURN r").clauses[0].patterns[0].elements[1]
        assert rel.variable == "r"
        assert rel.types == ("X", "Y")

    def test_bare_relationship(self):
        rel = parse_query("MATCH (a)--(b) RETURN a").clauses[0].patterns[0].elements[1]
        assert isinstance(rel, RelationshipPattern)
        assert rel.types == ()

    def test_variable_length(self):
        rel = parse_query("MATCH (a)-[:R*2..4]->(b) RETURN a").clauses[0].patterns[0].elements[1]
        assert rel.min_hops == 2 and rel.max_hops == 4
        rel = parse_query("MATCH (a)-[*]->(b) RETURN a").clauses[0].patterns[0].elements[1]
        assert rel.min_hops == 1 and rel.max_hops is None
        rel = parse_query("MATCH (a)-[:R*3]->(b) RETURN a").clauses[0].patterns[0].elements[1]
        assert rel.min_hops == 3 and rel.max_hops == 3

    def test_multiple_patterns_in_match(self):
        match = parse_query("MATCH (a)-[:R]->(b), (c:Other) RETURN a").clauses[0]
        assert len(match.patterns) == 2

    def test_named_path(self):
        pattern = parse_query("MATCH p = (a)-[:R]->(b) RETURN p").clauses[0].patterns[0]
        assert pattern.variable == "p"

    def test_quoted_label_in_pattern(self):
        node = parse_query("MATCH (n:'Mutation') RETURN n").clauses[0].patterns[0].elements[0]
        assert node.labels == ("Mutation",)

    def test_long_chain(self):
        pattern = parse_query(
            "MATCH (a:Mutation)-[:FoundIn]-(s:Sequence)-[:BelongsTo]-(l:Lineage) RETURN l"
        ).clauses[0].patterns[0]
        assert len(pattern.nodes) == 3
        assert len(pattern.relationships) == 2


class TestClauseParsing:
    def test_optional_match(self):
        clause = parse_query("OPTIONAL MATCH (n) RETURN n").clauses[0]
        assert isinstance(clause, MatchClause) and clause.optional

    def test_match_where(self):
        clause = parse_query("MATCH (n) WHERE n.age > 50 RETURN n").clauses[0]
        assert isinstance(clause.where, BinaryOp)
        assert clause.where.op == ">"

    def test_unwind(self):
        clause = parse_query("UNWIND [1, 2, 3] AS x RETURN x").clauses[0]
        assert isinstance(clause, UnwindClause)
        assert clause.variable == "x"

    def test_with_aggregation_order_limit(self):
        clause = parse_query(
            "MATCH (n) WITH n.city AS city, count(*) AS c ORDER BY c DESC LIMIT 3 RETURN city"
        ).clauses[1]
        assert isinstance(clause, WithClause)
        assert clause.items[0].alias == "city"
        assert clause.order_by[0].descending
        assert isinstance(clause.limit, Literal)

    def test_with_where(self):
        clause = parse_query("MATCH (n) WITH count(n) AS c WHERE c > 50 RETURN c").clauses[1]
        assert clause.where is not None

    def test_return_distinct_and_wildcard(self):
        clause = parse_query("MATCH (n) RETURN DISTINCT n.name").clauses[-1]
        assert isinstance(clause, ReturnClause) and clause.distinct
        clause = parse_query("MATCH (n) RETURN *").clauses[-1]
        assert clause.include_wildcard

    def test_create(self):
        clause = parse_query("CREATE (:Alert {desc: 'x'})").clauses[0]
        assert isinstance(clause, CreateClause)

    def test_merge(self):
        clause = parse_query("MERGE (n:Hospital {name: 'Sacco'})").clauses[0]
        assert isinstance(clause, MergeClause)

    def test_merge_on_create_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_query("MERGE (n) ON CREATE SET n.x = 1")

    def test_set_variants(self):
        clause = parse_query("MATCH (n) SET n.x = 1, n:Extra, n += {y: 2}").clauses[1]
        assert isinstance(clause, SetClause)
        assert isinstance(clause.items[0], SetPropertyItem)
        assert isinstance(clause.items[1], SetLabelsItem)

    def test_remove(self):
        clause = parse_query("MATCH (n) REMOVE n.x, n:Label").clauses[1]
        assert isinstance(clause, RemoveClause)
        assert len(clause.items) == 2

    def test_delete_and_detach_delete(self):
        clause = parse_query("MATCH (n) DELETE n").clauses[1]
        assert isinstance(clause, DeleteClause) and not clause.detach
        clause = parse_query("MATCH (n) DETACH DELETE n").clauses[1]
        assert clause.detach

    def test_foreach(self):
        clause = parse_query(
            "MATCH (n) FOREACH (x IN [1,2] | CREATE (:Alert {v: x}))"
        ).clauses[1]
        assert isinstance(clause, ForeachClause)
        assert isinstance(clause.body[0], CreateClause)

    def test_call_with_yield(self):
        clause = parse_query(
            "CALL apoc.do.when(true, 'RETURN 1', '', {}) YIELD value RETURN value"
        ).clauses[0]
        assert isinstance(clause, CallClause)
        assert clause.procedure == "apoc.do.when"
        assert clause.yield_items == (("value", "value"),)

    def test_union_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_query("MATCH (n) RETURN n UNION MATCH (m) RETURN m")

    def test_return_must_be_last(self):
        # parser accepts it; the executor enforces position — but a query
        # with RETURN before other clauses still parses into two clauses.
        query = parse_query("MATCH (n) RETURN n")
        assert isinstance(query.clauses[-1], ReturnClause)

    def test_empty_query_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_query("   ")

    def test_read_only_detection(self):
        assert parse_query("MATCH (n) RETURN n").is_read_only
        assert not parse_query("CREATE (:X)").is_read_only


class TestExpressionParsing:
    def test_precedence_and_or(self):
        expr = parse_expression("true OR false AND false")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_comparison_chain(self):
        expr = parse_expression("a.x <> b.y")
        assert expr.op == "<>"
        assert isinstance(expr.left, PropertyAccess)

    def test_label_predicate_expression(self):
        expr = parse_expression("n:IcuPatient")
        assert isinstance(expr, LabelPredicate)
        assert expr.labels == ("IcuPatient",)

    def test_parameter_and_variable(self):
        assert isinstance(parse_expression("$limit"), Parameter)
        assert isinstance(parse_expression("limitx"), Variable)

    def test_function_call(self):
        expr = parse_expression("coalesce(n.x, 0)")
        assert isinstance(expr, FunctionCall) and expr.name == "coalesce"

    def test_count_star_and_distinct(self):
        assert isinstance(parse_expression("count(*)"), CountStar)
        expr = parse_expression("count(DISTINCT n)")
        assert isinstance(expr, FunctionCall) and expr.distinct

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, CaseExpression)
        assert expr.default is not None

    def test_case_simple_normalised(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        condition = expr.whens[0][0]
        assert isinstance(condition, BinaryOp) and condition.op == "="

    def test_exists_block(self):
        expr = parse_expression(
            "EXISTS { MATCH (:CriticalEffect)-[:Risk]-(m:Mutation) WHERE m.name = 'x' }"
        )
        assert isinstance(expr, ExistsPattern)
        assert expr.where is not None

    def test_exists_inline_pattern(self):
        expr = parse_expression("EXISTS (NEW)-[:Risk]-(:CriticalEffect)")
        assert isinstance(expr, ExistsPattern)
        assert len(expr.patterns[0].relationships) == 1

    def test_is_null(self):
        expr = parse_expression("n.x IS NOT NULL")
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("'diabetes' IN p.comorbidity")
        assert expr.op == "IN"

    def test_string_predicates(self):
        assert parse_expression("n.name STARTS WITH 'Spike'").op == "STARTS WITH"
        assert parse_expression("n.name ENDS WITH 'G'").op == "ENDS WITH"
        assert parse_expression("n.name CONTAINS 'D614'").op == "CONTAINS"

    def test_list_and_map_literals(self):
        expr = parse_expression("[1, 2, 3]")
        assert len(expr.items) == 3
        expr = parse_expression("{time: datetime(), desc: 'alert'}")
        assert expr.entries[0][0] == "time"

    def test_list_comprehension(self):
        expr = parse_expression("[x IN [1,2,3] WHERE x > 1 | x * 10]")
        assert expr.variable == "x"
        assert expr.where is not None and expr.projection is not None

    def test_list_index(self):
        expr = parse_expression("xs[0]")
        assert isinstance(expr.index, Literal)

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert expr.op == "-"

    def test_trailing_input_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_expression("1 + 2 extra stuff (")

    def test_nested_property_access(self):
        expr = parse_expression("aProp.node.name")
        assert isinstance(expr, PropertyAccess)
        assert isinstance(expr.subject, PropertyAccess)


class TestPaperTriggerQueries:
    """The condition/statement fragments used by the paper's six triggers parse."""

    def test_new_critical_mutation_statement(self):
        parse_query(
            "CREATE (:Alert{time:DATETIME(), desc:'New critical mutation', mutation:NEW.name})"
        )

    def test_new_critical_lineage_condition(self):
        parse_query(
            "MATCH (s:Sequence)-[NEW]-(l:Lineage) "
            "WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) } "
            "RETURN l"
        )

    def test_icu_threshold_condition(self):
        parse_query(
            "MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital{name:'Sacco'}) "
            "WITH COUNT(p) AS icuPat WHERE icuPat > 50 RETURN icuPat"
        )

    def test_icu_increase_condition(self):
        parse_query(
            "MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital{name: 'Sacco'}) "
            "MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital{name:'Sacco'}) "
            "WITH COUNT(pn) AS NewIcuPat, COUNT(p) AS TotalIcuPat "
            "WHERE NewIcuPat * 1.0 / TotalIcuPat > 0.1 RETURN NewIcuPat"
        )

    def test_relocation_statement(self):
        parse_query(
            "MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital{name:'Sacco'}) "
            "MATCH (pt:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(ht:Hospital {name:'Meyer'}) "
            "WITH COUNT(pt) AS MeyerICU, ht.icuBeds AS MeyerBeds, COUNT(pn) AS newICUSacco, ht "
            "WHERE newICUSacco + MeyerICU <= MeyerBeds "
            "MATCH (p:NEWNODES)-[c:TreatedAt]-(:Hospital{name:'Sacco'}) "
            "DELETE c CREATE (p)-[:TreatedAt]->(ht)"
        )

    def test_move_to_near_hospital_statement(self):
        parse_query(
            "MATCH (h:Hospital)-[:LocatedIn]-(:Region{name:'Lombardy'}), "
            "(NEW)-[:TreatedAt]-(h)-[ct:ConnectedTo]-(hc:Hospital) "
            "WITH ct, hc, h, NEW ORDER BY ct.distance LIMIT 1 "
            "MATCH (NEW)-[c:TreatedAt]-(h) DELETE c CREATE (NEW)-[:TreatedAt]->(hc)"
        )

    def test_apoc_style_translation_parses(self):
        parse_query(
            "UNWIND $createdNodes AS cNodes "
            "MATCH (p:IcuPatient)-[:Isa]-(:HospitalizedPatient)"
            "-[:TreatedAt]-(h:Hospital{name:'Sacco'}) "
            "WITH COUNT(cNodes) AS NewIcuPat, COUNT(p) AS TotalIcuPat, cNodes "
            "CALL apoc.do.when(cNodes:IcuPatient AND NewIcuPat/TotalIcuPat > 0.1, "
            "'MERGE (:Alert{desc: \"increase\"})', '', {}) "
            "YIELD value RETURN *"
        )
