"""Physical operator layer tests: range/IN/relationship seeks, hash joins
and streaming top-k.

Every physical operator is advisory — the executor re-verifies labels,
properties and the WHERE clause per candidate — so the core assertion
throughout is *result equivalence*: the planned execution must return
exactly what the unplanned/naive/eager baselines return, including raising
the same errors.  EXPLAIN assertions pin that the intended operator was
actually chosen (otherwise the equivalence tests would pass vacuously by
falling back to scans).
"""

import pytest

from repro.cypher import QueryExecutor, execute, explain, parse_query, plan_query
from repro.cypher.errors import CypherError, CypherTypeError
from repro.cypher.planner import IN_LIST, RANGE, REL_INDEX
from repro.graph.model import Node, Relationship
from repro.graph.store import PropertyGraph


def canonical(value):
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, list):
        return ("list", tuple(canonical(v) for v in value))
    if isinstance(value, dict):
        return ("dict", tuple(sorted((k, canonical(v)) for k, v in value.items())))
    return value


def rows_of(graph, query, parameters=None, **executor_kwargs):
    executor = QueryExecutor(graph, parameters=parameters, **executor_kwargs)
    result = executor.execute(query)
    return sorted(
        (tuple(sorted((k, canonical(v)) for k, v in row.items())) for row in result.rows),
        key=repr,
    )


def outcome(graph, query, parameters=None, **executor_kwargs):
    """Sorted rows or the raised error type: both must be plan-independent."""
    try:
        return rows_of(graph, query, parameters, **executor_kwargs)
    except CypherError as exc:
        return ("error", type(exc).__name__)


def assert_plan_independent(build_graph, query, parameters=None, indexer=None):
    """The query's outcome must not depend on indexes or plan choices."""
    plain = outcome(build_graph(), query, parameters)
    indexed_graph = build_graph()
    if indexer is not None:
        indexer(indexed_graph)
    indexed = outcome(indexed_graph, query, parameters)
    naive = outcome(indexed_graph, query, parameters, join_ordering=False)
    eager = outcome(indexed_graph, query, parameters, eager=True, join_ordering=False)
    assert plain == indexed == naive == eager
    return indexed


# ---------------------------------------------------------------------------
# range seeks
# ---------------------------------------------------------------------------


def range_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for value in range(20):
        graph.create_node(["Item"], {"v": value, "name": f"item{value}"})
    graph.create_node(["Item"], {"name": "no-value"})  # v missing
    return graph


def index_v(graph: PropertyGraph) -> None:
    graph.create_range_index("Item", "v")


RANGE_CORPUS = [
    ("MATCH (n:Item) WHERE n.v > 15 RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v >= 15 RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v < 3 RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v <= 3 RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v > 5 AND n.v <= 8 RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE 5 < n.v AND 8 >= n.v RETURN n.v AS v", None),  # flipped
    ("MATCH (n:Item) WHERE n.v > $lo AND n.v < $hi RETURN n.v AS v", {"lo": 10, "hi": 14}),
    ("MATCH (n:Item) WHERE n.v > 100 RETURN n.v AS v", None),  # empty
    ("MATCH (n:Item) WHERE n.v > $lo RETURN n.v AS v", {"lo": None}),  # null bound
    # repeated bounds: only the first feeds the seek, WHERE applies both
    ("MATCH (n:Item) WHERE n.v > 2 AND n.v > 10 RETURN n.v AS v", None),
    # range + unindexed equality on another property
    ("MATCH (n:Item) WHERE n.v >= 18 AND n.name = 'item19' RETURN n.v AS v", None),
]


class TestRangeSeek:
    @pytest.mark.parametrize("query,parameters", RANGE_CORPUS)
    def test_results_independent_of_range_index(self, query, parameters):
        assert_plan_independent(range_graph, query, parameters, index_v)

    def test_explain_shows_range_seek_with_estimate(self):
        graph = range_graph()
        index_v(graph)
        description = explain("MATCH (n:Item) WHERE n.v > 5 AND n.v <= 8 RETURN n", graph)
        assert "IndexRangeSeek(Item.v > 5 AND Item.v <= 8)" in description
        assert "est~" in description

    def test_range_seek_is_actually_chosen(self):
        graph = range_graph()
        index_v(graph)
        plan = plan_query(parse_query("MATCH (n:Item) WHERE n.v > 5 RETURN n"), graph)
        [pattern_plan] = plan.pattern_plans()
        assert pattern_plan.start.kind == RANGE
        assert plan.uses_index()

    def test_equality_still_beats_range(self):
        graph = range_graph()
        index_v(graph)
        plan = plan_query(
            parse_query("MATCH (n:Item) WHERE n.v = 5 AND n.v > 1 RETURN n"), graph
        )
        assert pattern_kind(plan) == "index"

    def test_ordered_index_answers_equality_probes(self):
        graph = range_graph()
        index_v(graph)
        plan = plan_query(parse_query("MATCH (n:Item {v: 5}) RETURN n"), graph)
        assert pattern_kind(plan) == "index"
        assert execute(graph, "MATCH (n:Item {v: 5}) RETURN n.name AS name").rows == [
            {"name": "item5"}
        ]

    def test_mixed_type_entries_force_scan_and_preserve_errors(self):
        # one string value among numbers: a live scan raises CypherTypeError
        # comparing it with the bound, so the seek must decline and the
        # planned execution must raise identically.
        def build():
            graph = range_graph()
            graph.create_node(["Item"], {"v": "not-a-number"})
            return graph

        result = assert_plan_independent(
            build, "MATCH (n:Item) WHERE n.v > 5 RETURN n.v AS v", None, index_v
        )
        assert result == ("error", "CypherTypeError")

    def test_string_range_seeks_work(self):
        def build():
            graph = PropertyGraph()
            for name in ("ann", "bob", "cal", "dee"):
                graph.create_node(["P"], {"name": name})
            return graph

        rows = assert_plan_independent(
            build,
            "MATCH (p:P) WHERE p.name >= 'b' AND p.name < 'd' RETURN p.name AS name",
            None,
            lambda g: g.create_range_index("P", "name"),
        )
        assert len(rows) == 2

    def test_nan_entries_never_break_range_results(self):
        # NaN compares False against everything: letting it into a sorted
        # key list breaks bisect's invariant and silently *drops* matching
        # rows.  It must live in the unordered bucket, forcing the scan
        # fallback (which filters NaN like any unindexed comparison).
        def build():
            graph = PropertyGraph()
            for value in (5.0, float("nan"), 1.0, 2.0, 3.0):
                graph.create_node(["L"], {"p": value})
            return graph

        rows = assert_plan_independent(
            build,
            "MATCH (n:L) WHERE n.p >= 2 RETURN n.p AS p",
            None,
            lambda g: g.create_range_index("L", "p"),
        )
        assert len(rows) == 3  # 2.0, 3.0 and 5.0 — nothing silently dropped

    def test_mixed_unorderable_values_do_not_break_maintenance(self):
        # list properties of different element types are mutually
        # incomparable; indexing them must not raise from create_node /
        # set_node_property, and equality probes must still work
        graph = PropertyGraph()
        graph.create_range_index("L", "p")
        graph.create_node(["L"], {"p": [1]})
        graph.create_node(["L"], {"p": ["a"]})  # must not raise
        node = graph.create_node(["L"], {"p": [2, 3]})
        graph.set_node_property(node.id, "p", ["b"])
        rows = execute(graph, "MATCH (n:L {p: ['a']}) RETURN n.p AS p").rows
        assert rows == [{"p": ["a"]}]
        # a numeric range over the same pair falls back to the scan, which
        # raises on the incomparable list entries exactly as unindexed
        graph.create_node(["L"], {"p": 7})
        with pytest.raises(CypherTypeError):
            execute(graph, "MATCH (n:L) WHERE n.p > 5 RETURN n.p AS p")
        plain = PropertyGraph()
        for value in ([1], ["a"], ["b"], 7):
            plain.create_node(["L"], {"p": value})
        with pytest.raises(CypherTypeError):
            execute(plain, "MATCH (n:L) WHERE n.p > 5 RETURN n.p AS p")

    def test_dropped_range_index_falls_back(self):
        graph = range_graph()
        index_v(graph)
        query = "MATCH (n:Item) WHERE n.v > 17 RETURN n.v AS v"
        assert sorted(r["v"] for r in execute(graph, query).rows) == [18, 19]
        graph.drop_range_index("Item", "v")
        assert sorted(r["v"] for r in execute(graph, query).rows) == [18, 19]


def pattern_kind(plan):
    [pattern_plan] = plan.pattern_plans()
    return pattern_plan.start.kind


# ---------------------------------------------------------------------------
# IN-list seeks
# ---------------------------------------------------------------------------


IN_CORPUS = [
    ("MATCH (n:Item) WHERE n.v IN [3, 5, 999] RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v IN [] RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v IN [3, null] RETURN n.v AS v", None),
    ("MATCH (n:Item) WHERE n.v IN $vals RETURN n.v AS v", {"vals": [1, 2]}),
    ("MATCH (n:Item) WHERE n.v IN $vals RETURN n.v AS v", {"vals": []}),
    # a non-list parameter raises per candidate in a scan; the seek must
    # fall back so the planned run raises identically
    ("MATCH (n:Item) WHERE n.v IN $vals RETURN n.v AS v", {"vals": 7}),
]


class TestInSeek:
    @pytest.mark.parametrize("query,parameters", IN_CORPUS)
    def test_results_independent_of_index(self, query, parameters):
        assert_plan_independent(range_graph, query, parameters, index_v)

    def test_in_seek_chosen_and_shown(self):
        graph = range_graph()
        index_v(graph)
        plan = plan_query(
            parse_query("MATCH (n:Item) WHERE n.v IN [3, 5] RETURN n"), graph
        )
        assert pattern_kind(plan) == IN_LIST
        assert "IndexSeek(Item.v IN [3, 5])" in plan.plan_description()

    def test_in_seek_works_against_exact_index_too(self):
        graph = range_graph()
        graph.create_property_index("Item", "v")
        plan = plan_query(
            parse_query("MATCH (n:Item) WHERE n.v IN [3, 5] RETURN n"), graph
        )
        assert pattern_kind(plan) == IN_LIST
        rows = execute(graph, "MATCH (n:Item) WHERE n.v IN [3, 5] RETURN n.v AS v").rows
        assert sorted(r["v"] for r in rows) == [3, 5]


# ---------------------------------------------------------------------------
# relationship-property seeks
# ---------------------------------------------------------------------------


def rel_graph() -> PropertyGraph:
    graph = PropertyGraph()
    people = [graph.create_node(["P"], {"i": i}) for i in range(8)]
    graph.create_relationship("KNOWS", people[0].id, people[1].id, {"since": 2020})
    graph.create_relationship("KNOWS", people[1].id, people[2].id, {"since": 2021})
    graph.create_relationship("KNOWS", people[2].id, people[3].id, {"since": 2020})
    graph.create_relationship("KNOWS", people[3].id, people[3].id, {"since": 2020})  # loop
    graph.create_relationship("KNOWS", people[4].id, people[5].id)  # no property
    graph.create_relationship("LIKES", people[5].id, people[6].id, {"since": 2020})
    return graph


def index_since(graph: PropertyGraph) -> None:
    graph.create_relationship_property_index("KNOWS", "since")


REL_CORPUS = [
    ("MATCH (a)-[r:KNOWS {since: 2020}]->(b) RETURN a, r, b", None),
    ("MATCH (a)<-[r:KNOWS {since: 2020}]-(b) RETURN a, r, b", None),
    ("MATCH (a)-[r:KNOWS {since: 2020}]-(b) RETURN a, r, b", None),  # both + loop
    ("MATCH (a:P)-[r:KNOWS]->(b) WHERE r.since = $y RETURN a, b", {"y": 2021}),
    ("MATCH (a)-[r:KNOWS {since: 1999}]->(b) RETURN a", None),  # empty
    ("MATCH (a)-[r:KNOWS {since: null}]->(b) RETURN a", None),  # null matches nothing
    # longer pattern continuing past the seeked relationship
    ("MATCH (a)-[r:KNOWS {since: 2020}]->(b)-[s:KNOWS]->(c) RETURN a, b, c", None),
    # named path through a rel seek keeps forward orientation
    ("MATCH p = (a)-[r:KNOWS {since: 2021}]->(b) RETURN a.i AS ai, b.i AS bi", None),
]


class TestRelIndexSeek:
    @pytest.mark.parametrize("query,parameters", REL_CORPUS)
    def test_results_independent_of_rel_index(self, query, parameters):
        assert_plan_independent(rel_graph, query, parameters, index_since)

    def test_rel_seek_chosen_and_shown(self):
        graph = rel_graph()
        index_since(graph)
        plan = plan_query(
            parse_query("MATCH (a)-[r:KNOWS {since: 2020}]->(b) RETURN a"), graph
        )
        [pattern_plan] = plan.pattern_plans()
        assert pattern_plan.start.kind == REL_INDEX
        assert "RelIndexSeek(KNOWS.since = 2020)" in plan.plan_description()
        assert "est~" in plan.plan_description()
        assert plan.uses_index()

    def test_where_conjunct_on_rel_variable_feeds_seek(self):
        graph = rel_graph()
        index_since(graph)
        plan = plan_query(
            parse_query("MATCH (a)-[r:KNOWS]->(b) WHERE r.since = 2021 RETURN a"), graph
        )
        assert plan.pattern_plans()[0].start.kind == REL_INDEX

    def test_labelled_endpoint_can_beat_rel_seek(self):
        # a highly selective node start should win over a poor rel seek
        graph = rel_graph()
        for _ in range(50):
            a = graph.create_node(["P"], {})
            b = graph.create_node(["P"], {})
            graph.create_relationship("KNOWS", a.id, b.id, {"since": 2020})
        graph.create_node(["Rare"], {})
        index_since(graph)
        graph.create_property_index("P", "i")
        plan = plan_query(
            parse_query("MATCH (a:P {i: 3})-[r:KNOWS {since: 2020}]->(b) RETURN a"),
            graph,
        )
        assert plan.pattern_plans()[0].start.kind == "index"

    def test_dropped_rel_index_falls_back(self):
        graph = rel_graph()
        index_since(graph)
        query = "MATCH (a)-[r:KNOWS {since: 2020}]->(b) RETURN a.i AS i"
        before = sorted(r["i"] for r in execute(graph, query).rows)
        graph.drop_relationship_property_index("KNOWS", "since")
        assert sorted(r["i"] for r in execute(graph, query).rows) == before


# ---------------------------------------------------------------------------
# hash joins and materialised cartesian products
# ---------------------------------------------------------------------------


def join_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(12):
        graph.create_node(["L"], {"k": i % 4, "i": i})
    for i in range(9):
        graph.create_node(["R"], {"k": i % 3, "i": i})
    for i in range(3):
        graph.create_node(["S"], {"k": i})
    return graph


JOIN_CORPUS = [
    ("MATCH (a:L), (b:R) WHERE a.k = b.k RETURN a.i AS ai, b.i AS bi", None),
    ("MATCH (a:L), (b:R) WHERE b.k = a.k AND a.i < 5 RETURN a.i AS ai, b.i AS bi", None),
    ("MATCH (a:L), (b:R) RETURN a.i AS ai, b.i AS bi", None),  # keyless cartesian
    ("MATCH (a:L), (b:R), (c:S) WHERE a.k = b.k AND b.k = c.k RETURN a.i AS ai, b.i AS bi, c.k AS ck", None),
    # null keys: rows with k null on either side must simply not join
    ("MATCH (a:L), (b:R) WHERE a.missing = b.k RETURN a.i AS ai", None),
    # non-key conjuncts still apply on joined rows
    ("MATCH (a:L), (b:R) WHERE a.k = b.k AND a.i > b.i RETURN a.i AS ai, b.i AS bi", None),
    ("OPTIONAL MATCH (a:Nope), (b:AlsoNope) RETURN a, b", None),
]


class TestHashJoin:
    @pytest.mark.parametrize("query,parameters", JOIN_CORPUS)
    def test_results_match_nested_loop_baseline(self, query, parameters):
        assert_plan_independent(join_graph, query, parameters)

    def test_hash_join_planned_and_shown(self):
        graph = join_graph()
        description = explain(
            "MATCH (a:L), (b:R) WHERE a.k = b.k RETURN a, b", graph
        )
        assert "HashJoin(" in description
        assert "a.k = b.k" in description
        assert "est~" in description

    def test_keyless_disconnected_pair_materialises(self):
        graph = join_graph()
        description = explain("MATCH (a:L), (b:R) RETURN a, b", graph)
        assert "CartesianProduct(" in description

    def test_connected_patterns_use_no_join_operator(self):
        graph = join_graph()
        a = graph.create_node(["A"], {})
        b = graph.create_node(["B"], {})
        graph.create_relationship("T", a.id, b.id)
        plan = plan_query(
            parse_query("MATCH (x:A)-[:T]->(y), (y)-[:T]->(z) RETURN x"), graph
        )
        for join_order in plan.join_orders():
            assert all(step.operator is None for step in join_order.steps)

    def test_join_keys_with_list_values(self):
        graph = PropertyGraph()
        graph.create_node(["L"], {"k": [1, 2]})
        graph.create_node(["L"], {"k": [3]})
        graph.create_node(["R"], {"k": [1, 2]})
        query = "MATCH (a:L), (b:R) WHERE a.k = b.k RETURN a.k AS k"
        assert_plan_independent(lambda: graph.copy(), query)
        rows = execute(graph, query).rows
        assert rows == [{"k": [1, 2]}]

    def test_bound_variable_dependencies_do_not_leak_across_rows(self):
        # the disconnected pattern reads an outer variable in its property
        # map; each outer row must get its own build
        graph = PropertyGraph()
        for k in (1, 2):
            graph.create_node(["Outer"], {"k": k})
            graph.create_node(["Inner"], {"k": k})
            graph.create_node(["Probe"], {"p": k})
        query = (
            "MATCH (o:Outer) MATCH (p:Probe), (i:Inner {k: o.k}) "
            "RETURN o.k AS ok, i.k AS ik, p.p AS pp"
        )
        ordered = rows_of(graph, query)
        naive = rows_of(graph, query, join_ordering=False)
        eager = rows_of(graph, query, eager=True, join_ordering=False)
        assert ordered == naive == eager
        assert len(ordered) == 4  # 2 outer × 2 probes, inner pinned per outer


# ---------------------------------------------------------------------------
# streaming top-k
# ---------------------------------------------------------------------------


def topk_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(50):
        graph.create_node(["N"], {"v": i % 10, "i": i})
    return graph


TOPK_CORPUS = [
    ("MATCH (n:N) RETURN n.v AS v, n.i AS i ORDER BY v LIMIT 7", None),
    ("MATCH (n:N) RETURN n.v AS v, n.i AS i ORDER BY v DESC LIMIT 7", None),
    ("MATCH (n:N) RETURN n.v AS v, n.i AS i ORDER BY v SKIP 5 LIMIT 7", None),
    ("MATCH (n:N) RETURN n.v AS v ORDER BY v LIMIT 0", None),
    ("MATCH (n:N) RETURN n.v AS v ORDER BY v LIMIT $k", {"k": 4}),
    ("MATCH (n:N) RETURN n.v AS v, n.i AS i ORDER BY v ASC, i DESC LIMIT 6", None),
    # ORDER BY on a non-returned variable still works through the source row
    ("MATCH (n:N) RETURN n.v AS v ORDER BY n.i DESC LIMIT 3", None),
    # WITH-level top-k feeding a later clause
    ("MATCH (n:N) WITH n ORDER BY n.i DESC LIMIT 5 RETURN n.i AS i", None),
]


class TestTopK:
    @pytest.mark.parametrize("query,parameters", TOPK_CORPUS)
    def test_topk_equals_eager_full_sort_exactly(self, query, parameters):
        """Row-for-row (order included): the heap must replicate the stable
        sort's tie-breaking, not just the row multiset."""
        graph = topk_graph()
        streaming = QueryExecutor(graph, parameters=parameters).execute(query).rows
        eager = QueryExecutor(graph, parameters=parameters, eager=True).execute(query).rows
        assert streaming == eager

    def test_topk_planned_and_shown(self):
        graph = topk_graph()
        description = explain("MATCH (n:N) RETURN n.v AS v ORDER BY v LIMIT 7", graph)
        assert "TopK(ORDER BY v LIMIT 7)" in description
        assert "est~7 rows" in description

    def test_order_by_without_limit_stays_a_sort(self):
        graph = topk_graph()
        description = explain("MATCH (n:N) RETURN n.v AS v ORDER BY v", graph)
        assert "Sort(ORDER BY v)" in description
        assert "TopK(" not in description

    def test_distinct_order_by_limit_is_not_topk(self):
        graph = topk_graph()
        query = "MATCH (n:N) RETURN DISTINCT n.v AS v ORDER BY v DESC LIMIT 3"
        description = explain(query, graph)
        assert "TopK(" not in description
        rows = execute(graph, query).rows
        assert [r["v"] for r in rows] == [9, 8, 7]

    def test_null_sort_values_order_like_the_full_sort(self):
        graph = topk_graph()
        graph.create_node(["N"], {"i": 1000})  # v missing -> null sort key
        query = "MATCH (n:N) RETURN n.v AS v ORDER BY v LIMIT 60"
        streaming = QueryExecutor(graph).execute(query).rows
        eager = QueryExecutor(graph, eager=True).execute(query).rows
        assert streaming == eager
        assert streaming[-1] == {"v": None}


# ---------------------------------------------------------------------------
# evaluation-order-dependent clauses decline seeks entirely
# ---------------------------------------------------------------------------


class TestEvaluationOrderDependentClauses:
    def test_where_seek_cannot_hide_sibling_pattern_errors(self):
        # Shrunk hypothesis counterexample: (e:B {v: a.v}) raises when
        # reached (`a` is never bound), and it is reached only if the
        # sibling pattern produces rows.  An IndexSeek from `WHERE c.v = 1`
        # would pre-filter those rows to zero and hide the error, so the
        # planner must run the whole clause unseeked.
        def build():
            graph = PropertyGraph()
            created = [
                graph.create_node(["C"], {"v": 0}),
                graph.create_node(["B"], {"v": 0}),
                graph.create_node(["C"], {"v": 0}),
            ]
            graph.create_relationship("S", created[0].id, created[2].id)
            return graph

        def index_all(graph):
            for label in ("A", "B", "C"):
                graph.create_property_index(label, "v")
            graph.create_range_index("C", "v")

        query = (
            "MATCH (x)-[:S]->(c:C), (e:B {v: a.v}) WHERE c.v = 1 "
            "RETURN x AS x, c AS c, e AS e"
        )
        result = assert_plan_independent(build, query, None, index_all)
        assert result == ("error", "CypherRuntimeError")

    def test_seeks_still_used_when_reference_is_satisfied_earlier(self):
        graph = PropertyGraph()
        outer = graph.create_node(["O"], {"k": 1})
        del outer
        for value in range(10):
            graph.create_node(["B"], {"v": value})
        graph.create_property_index("B", "v")
        # `o` is bound by the earlier clause, so the second clause is not
        # evaluation-order dependent and keeps its index seek
        plan = plan_query(
            parse_query("MATCH (o:O) MATCH (e:B {v: o.k}), (f:B) WHERE f.v = 2 RETURN e, f"),
            graph,
        )
        kinds = {p.start.kind for p in plan.pattern_plans()}
        assert "index" in kinds


# ---------------------------------------------------------------------------
# DISTINCT/grouping collision regression (type-tagged _hashable)
# ---------------------------------------------------------------------------


class TestHashableTypeTags:
    def test_list_of_pairs_does_not_collide_with_map_under_distinct(self):
        graph = PropertyGraph()
        rows = execute(
            graph, "UNWIND [[['a', 1]], {a: 1}, [['a', 1]]] AS x RETURN DISTINCT x"
        ).rows
        assert len(rows) == 2  # the two list duplicates merge; the map survives

    def test_list_and_map_group_separately(self):
        graph = PropertyGraph()
        rows = execute(
            graph,
            "UNWIND [[['a', 1]], {a: 1}] AS x RETURN x AS key, count(*) AS c",
        ).rows
        assert sorted(row["c"] for row in rows) == [1, 1]
