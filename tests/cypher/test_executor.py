"""End-to-end tests for query execution."""

import datetime

import pytest

from repro.cypher import QueryExecutor, execute
from repro.cypher.errors import CypherRuntimeError, UnsupportedFeatureError
from repro.graph import PropertyGraph
from repro.tx import Transaction


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def hospital_graph():
    """Small CoV2K-flavoured graph: hospitals, regions, patients."""
    graph = PropertyGraph()
    lombardy = graph.create_node(["Region"], {"name": "Lombardy"})
    tuscany = graph.create_node(["Region"], {"name": "Tuscany"})
    sacco = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 3})
    meyer = graph.create_node(["Hospital"], {"name": "Meyer", "icuBeds": 5})
    graph.create_relationship("LocatedIn", sacco.id, lombardy.id)
    graph.create_relationship("LocatedIn", meyer.id, tuscany.id)
    graph.create_relationship("ConnectedTo", sacco.id, meyer.id, {"distance": 280})
    for i in range(4):
        patient = graph.create_node(
            ["Patient", "HospitalizedPatient"],
            {"ssn": f"P{i}", "prognosis": "severe" if i % 2 else "mild"},
        )
        graph.create_relationship("TreatedAt", patient.id, sacco.id)
    return graph


class TestCreate:
    def test_create_single_node(self, graph):
        result = execute(graph, "CREATE (:Alert {desc: 'hello'})")
        assert graph.count_nodes_with_label("Alert") == 1
        assert result.statistics.nodes_created == 1

    def test_create_path(self, graph):
        execute(graph, "CREATE (a:Patient {ssn: 'X'})-[:TreatedAt {since: 2021}]->(h:Hospital {name: 'Sacco'})")
        assert graph.count_nodes_with_label("Patient") == 1
        rels = graph.relationships_with_type("TreatedAt")
        assert rels[0].properties["since"] == 2021

    def test_create_uses_bound_variables(self, graph):
        execute(graph, "CREATE (h:Hospital {name: 'Sacco'})")
        execute(
            graph,
            "MATCH (h:Hospital {name: 'Sacco'}) CREATE (p:Patient {ssn: 'Y'})-[:TreatedAt]->(h)",
        )
        assert graph.node_count() == 2
        assert graph.relationship_count() == 1

    def test_create_undirected_defaults_left_to_right(self, graph):
        execute(graph, "CREATE (a:A)-[:R]-(b:B)")
        rel = graph.relationships_with_type("R")[0]
        start = graph.node(rel.start)
        assert "A" in start.labels

    def test_create_incoming_direction(self, graph):
        execute(graph, "CREATE (a:A)<-[:R]-(b:B)")
        rel = graph.relationships_with_type("R")[0]
        assert "B" in graph.node(rel.start).labels

    def test_create_with_parameters(self, graph):
        execute(graph, "CREATE (:Alert {desc: $d})", parameters={"d": "warning"})
        assert graph.find_nodes("Alert", {"desc": "warning"})

    def test_returns_created_node(self, graph):
        result = execute(graph, "CREATE (a:Alert {desc: 'x'}) RETURN a.desc AS desc")
        assert result.values("desc") == ["x"]


class TestMatch:
    def test_match_by_label(self, hospital_graph):
        result = execute(hospital_graph, "MATCH (h:Hospital) RETURN h.name AS name ORDER BY name")
        assert result.values("name") == ["Meyer", "Sacco"]

    def test_match_with_property_filter(self, hospital_graph):
        result = execute(
            hospital_graph, "MATCH (h:Hospital {name: 'Sacco'}) RETURN h.icuBeds AS beds"
        )
        assert result.values("beds") == [3]

    def test_match_where(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient) WHERE p.prognosis = 'severe' RETURN p.ssn AS ssn ORDER BY ssn",
        )
        assert result.values("ssn") == ["P1", "P3"]

    def test_match_relationship_pattern(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient)-[:TreatedAt]->(h:Hospital) RETURN count(p) AS n",
        )
        assert result.single("n") == 4

    def test_match_direction_matters(self, hospital_graph):
        wrong_direction = execute(
            hospital_graph, "MATCH (p:Patient)<-[:TreatedAt]-(h:Hospital) RETURN count(*) AS n"
        )
        assert wrong_direction.single("n") == 0

    def test_match_undirected(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital {name:'Sacco'})-[:ConnectedTo]-(other:Hospital) RETURN other.name AS name",
        )
        assert result.values("name") == ["Meyer"]

    def test_multi_hop_chain(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient)-[:TreatedAt]->(:Hospital)-[:LocatedIn]->(r:Region) "
            "RETURN DISTINCT r.name AS region",
        )
        assert result.values("region") == ["Lombardy"]

    def test_multiple_labels_require_all(self, hospital_graph):
        result = execute(
            hospital_graph, "MATCH (p:Patient:HospitalizedPatient) RETURN count(*) AS n"
        )
        assert result.single("n") == 4
        result = execute(hospital_graph, "MATCH (p:Patient:IcuPatient) RETURN count(*) AS n")
        assert result.single("n") == 0

    def test_comma_separated_patterns_share_bindings(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital {name:'Sacco'}), (r:Region {name:'Tuscany'}) "
            "RETURN h.name AS h, r.name AS r",
        )
        assert result.rows == [{"h": "Sacco", "r": "Tuscany"}]

    def test_optional_match_pads_with_null(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital) OPTIONAL MATCH (h)<-[:TreatedAt]-(p:Patient) "
            "RETURN h.name AS name, count(p) AS patients ORDER BY name",
        )
        assert result.rows == [
            {"name": "Meyer", "patients": 0},
            {"name": "Sacco", "patients": 4},
        ]

    def test_relationship_property_filter(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (:Hospital)-[c:ConnectedTo {distance: 280}]-(:Hospital) RETURN count(c) AS n",
        )
        # undirected match sees the relationship from both endpoints
        assert result.single("n") == 2

    def test_named_path(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH p = (:Patient {ssn:'P0'})-[:TreatedAt]->(:Hospital) "
            "RETURN size(nodes(p)) AS n, size(relationships(p)) AS r",
        )
        assert result.rows == [{"n": 2, "r": 1}]

    def test_variable_length_path(self, graph):
        execute(graph, "CREATE (:City {name:'A'})-[:Road]->(:City {name:'B'})-[:Road]->(:City {name:'C'})")
        result = execute(
            graph,
            "MATCH (a:City {name:'A'})-[:Road*1..2]->(c:City) RETURN c.name AS name ORDER BY name",
        )
        assert result.values("name") == ["B", "C"]

    def test_variable_length_minimum(self, graph):
        execute(graph, "CREATE (:City {name:'A'})-[:Road]->(:City {name:'B'})-[:Road]->(:City {name:'C'})")
        result = execute(
            graph,
            "MATCH (a:City {name:'A'})-[:Road*2..3]->(c:City) RETURN c.name AS name",
        )
        assert result.values("name") == ["C"]

    def test_bound_relationship_variable_reused(self, hospital_graph):
        sacco = hospital_graph.find_nodes("Hospital", {"name": "Sacco"})[0]
        meyer = hospital_graph.find_nodes("Hospital", {"name": "Meyer"})[0]
        rel = hospital_graph.relationships_with_type("ConnectedTo")[0]
        executor = QueryExecutor(hospital_graph)
        result = executor.execute(
            "MATCH (a:Hospital)-[NEW]-(b:Hospital) RETURN a.name AS a, b.name AS b",
            bindings={"NEW": rel},
        )
        names = {(row["a"], row["b"]) for row in result.rows}
        assert names == {("Sacco", "Meyer"), ("Meyer", "Sacco")}
        assert sacco.id != meyer.id

    def test_virtual_labels(self, hospital_graph):
        patients = hospital_graph.find_nodes("Patient")
        chosen = {patients[0].id, patients[1].id}
        executor = QueryExecutor(hospital_graph, virtual_labels={"NEWNODES": chosen})
        result = executor.execute("MATCH (p:NEWNODES) RETURN count(p) AS n")
        assert result.single("n") == 2
        result = executor.execute(
            "MATCH (p:NEWNODES)-[:TreatedAt]->(h:Hospital) RETURN count(p) AS n"
        )
        assert result.single("n") == 2


class TestProjectionAndAggregation:
    def test_return_expression_column_names(self, hospital_graph):
        result = execute(hospital_graph, "MATCH (h:Hospital) RETURN h.name ORDER BY h.name")
        assert result.columns == ["h.name"]
        assert result.values("h.name") == ["Meyer", "Sacco"]

    def test_count_star(self, hospital_graph):
        assert execute(hospital_graph, "MATCH (p:Patient) RETURN count(*) AS n").single("n") == 4

    def test_count_on_empty_match_returns_zero(self, graph):
        assert execute(graph, "MATCH (x:Nothing) RETURN count(*) AS n").single("n") == 0

    def test_group_by_implicit_keys(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient) RETURN p.prognosis AS prognosis, count(*) AS n ORDER BY prognosis",
        )
        assert result.rows == [{"prognosis": "mild", "n": 2}, {"prognosis": "severe", "n": 2}]

    def test_collect(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient {prognosis:'severe'}) RETURN collect(p.ssn) AS ssns",
        )
        assert sorted(result.single("ssns")) == ["P1", "P3"]

    def test_sum_avg_min_max(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital) RETURN sum(h.icuBeds) AS s, avg(h.icuBeds) AS a, "
            "min(h.icuBeds) AS lo, max(h.icuBeds) AS hi",
        )
        assert result.rows == [{"s": 8, "a": 4.0, "lo": 3, "hi": 5}]

    def test_count_distinct(self, hospital_graph):
        result = execute(
            hospital_graph, "MATCH (p:Patient) RETURN count(DISTINCT p.prognosis) AS n"
        )
        assert result.single("n") == 2

    def test_aggregate_inside_arithmetic(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient)-[:TreatedAt]->(h:Hospital {name:'Sacco'}) "
            "WITH count(p) AS patients MATCH (h:Hospital {name:'Sacco'}) "
            "RETURN patients * 1.0 / h.icuBeds AS load",
        )
        assert result.single("load") == pytest.approx(4 / 3)

    def test_with_filtering_aggregates(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient) WITH count(p) AS total WHERE total > 3 RETURN total",
        )
        assert result.single("total") == 4
        result = execute(
            hospital_graph,
            "MATCH (p:Patient) WITH count(p) AS total WHERE total > 10 RETURN total",
        )
        assert len(result) == 0

    def test_order_by_desc_limit_skip(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (p:Patient) RETURN p.ssn AS ssn ORDER BY ssn DESC SKIP 1 LIMIT 2",
        )
        assert result.values("ssn") == ["P2", "P1"]

    def test_distinct(self, hospital_graph):
        result = execute(
            hospital_graph, "MATCH (p:Patient) RETURN DISTINCT p.prognosis AS x ORDER BY x"
        )
        assert result.values("x") == ["mild", "severe"]

    def test_return_wildcard(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital {name:'Sacco'}) RETURN *",
        )
        assert result.columns == ["h"]
        assert result.rows[0]["h"].properties["name"] == "Sacco"

    def test_with_star_carries_bindings(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital {name:'Sacco'}) WITH *, h.icuBeds AS beds RETURN h.name AS name, beds",
        )
        assert result.rows == [{"name": "Sacco", "beds": 3}]

    def test_unwind(self, graph):
        result = execute(graph, "UNWIND [1, 2, 3] AS x RETURN x * 10 AS y")
        assert result.values("y") == [10, 20, 30]

    def test_unwind_null_produces_no_rows(self, graph):
        assert len(execute(graph, "UNWIND null AS x RETURN x")) == 0

    def test_unwind_scalar_behaves_as_singleton(self, graph):
        assert execute(graph, "UNWIND 5 AS x RETURN x").values("x") == [5]

    def test_return_table_rendering(self, hospital_graph):
        result = execute(hospital_graph, "MATCH (h:Hospital) RETURN h.name AS name ORDER BY name")
        table = result.to_table()
        assert "name" in table and "Sacco" in table


class TestExistsSubqueries:
    def test_exists_block(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital) WHERE EXISTS { MATCH (h)<-[:TreatedAt]-(:Patient) } "
            "RETURN h.name AS name",
        )
        assert result.values("name") == ["Sacco"]

    def test_exists_inline_pattern(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital) WHERE EXISTS (h)-[:LocatedIn]-(:Region {name:'Tuscany'}) "
            "RETURN h.name AS name",
        )
        assert result.values("name") == ["Meyer"]

    def test_not_exists(self, hospital_graph):
        result = execute(
            hospital_graph,
            "MATCH (h:Hospital) WHERE NOT EXISTS { MATCH (h)<-[:TreatedAt]-(:Patient) } "
            "RETURN h.name AS name",
        )
        assert result.values("name") == ["Meyer"]


class TestWriteClauses:
    def test_set_property_and_label(self, hospital_graph):
        execute(
            hospital_graph,
            "MATCH (p:Patient {ssn:'P0'}) SET p.prognosis = 'critical', p:IcuPatient",
        )
        patient = hospital_graph.find_nodes("Patient", {"ssn": "P0"})[0]
        assert patient.properties["prognosis"] == "critical"
        assert "IcuPatient" in patient.labels

    def test_set_from_map_merge_and_replace(self, graph):
        execute(graph, "CREATE (:Config {a: 1, b: 2})")
        execute(graph, "MATCH (c:Config) SET c += {b: 20, c: 30}")
        node = graph.find_nodes("Config")[0]
        assert node.properties == {"a": 1, "b": 20, "c": 30}
        execute(graph, "MATCH (c:Config) SET c = {z: 1}")
        node = graph.find_nodes("Config")[0]
        assert node.properties == {"z": 1}

    def test_remove_property_and_label(self, hospital_graph):
        execute(hospital_graph, "MATCH (p:Patient {ssn:'P0'}) SET p:Flagged")
        execute(hospital_graph, "MATCH (p:Patient {ssn:'P0'}) REMOVE p.prognosis, p:Flagged")
        patient = hospital_graph.find_nodes("Patient", {"ssn": "P0"})[0]
        assert "prognosis" not in patient.properties
        assert "Flagged" not in patient.labels

    def test_delete_relationship(self, hospital_graph):
        execute(
            hospital_graph,
            "MATCH (:Patient {ssn:'P0'})-[r:TreatedAt]->(:Hospital) DELETE r",
        )
        assert (
            execute(
                hospital_graph,
                "MATCH (:Patient {ssn:'P0'})-[r:TreatedAt]->(:Hospital) RETURN count(r) AS n",
            ).single("n")
            == 0
        )

    def test_detach_delete_node(self, hospital_graph):
        execute(hospital_graph, "MATCH (p:Patient {ssn:'P0'}) DETACH DELETE p")
        assert len(hospital_graph.find_nodes("Patient", {"ssn": "P0"})) == 0

    def test_delete_node_with_relationships_fails_without_detach(self, hospital_graph):
        from repro.graph import NodeInUseError

        with pytest.raises(NodeInUseError):
            execute(hospital_graph, "MATCH (p:Patient {ssn:'P0'}) DELETE p")

    def test_merge_matches_existing(self, graph):
        execute(graph, "CREATE (:Hospital {name: 'Sacco'})")
        execute(graph, "MERGE (:Hospital {name: 'Sacco'})")
        assert graph.count_nodes_with_label("Hospital") == 1

    def test_merge_creates_missing(self, graph):
        execute(graph, "MERGE (:Hospital {name: 'Sacco'})")
        assert graph.count_nodes_with_label("Hospital") == 1

    def test_foreach_creates_per_element(self, graph):
        execute(graph, "FOREACH (x IN [1, 2, 3] | CREATE (:Alert {level: x}))")
        assert graph.count_nodes_with_label("Alert") == 3

    def test_foreach_over_collected_nodes(self, hospital_graph):
        execute(
            hospital_graph,
            "MATCH (p:Patient) WITH collect(p) AS ps "
            "FOREACH (p IN ps | SET p.checked = true)",
        )
        assert all(
            node.properties.get("checked") is True
            for node in hospital_graph.find_nodes("Patient")
        )

    def test_statistics_counters(self, graph):
        result = execute(graph, "CREATE (a:A {x: 1})-[:R]->(b:B)")
        stats = result.statistics
        assert stats.nodes_created == 2
        assert stats.relationships_created == 1
        assert stats.properties_set == 1
        assert stats.contains_updates()

    def test_write_through_shared_transaction_captures_delta(self, graph):
        tx = Transaction(graph)
        execute(graph, "CREATE (:Alert {desc: 'x'})", transaction=tx)
        assert len(tx.statement_delta.created_nodes) == 1


class TestCallProcedures:
    def test_unregistered_procedure_rejected(self, graph):
        with pytest.raises(UnsupportedFeatureError):
            execute(graph, "CALL unknown.proc() YIELD value RETURN value")

    def test_custom_procedure(self, graph):
        def doubler(args, invocation):
            return [{"value": args[0] * 2}]

        executor = QueryExecutor(graph, procedures={"math.double": doubler})
        result = executor.execute("CALL math.double(21) YIELD value RETURN value")
        assert result.single("value") == 42

    def test_procedure_can_run_subquery(self, graph):
        execute(graph, "CREATE (:Hospital {name: 'Sacco'})")

        def conditional_create(args, invocation):
            if args[0]:
                invocation.run_subquery(args[1])
            return [{"done": True}]

        executor = QueryExecutor(graph, procedures={"util.when": conditional_create})
        executor.execute(
            "CALL util.when(true, 'CREATE (:Alert {desc: \"from proc\"})') YIELD done RETURN done"
        )
        assert graph.count_nodes_with_label("Alert") == 1


class TestErrorsAndDeterminism:
    def test_unknown_variable_in_return(self, graph):
        graph.create_node(["A"])
        with pytest.raises(CypherRuntimeError):
            execute(graph, "MATCH (n) RETURN missing_variable")

    def test_deterministic_clock_injection(self, graph):
        stamp = datetime.datetime(2020, 1, 1, 0, 0, 0)
        execute(graph, "CREATE (:Alert {time: datetime()})", clock=lambda: stamp)
        assert graph.find_nodes("Alert")[0].properties["time"] == stamp

    def test_return_not_last_rejected(self, graph):
        with pytest.raises(UnsupportedFeatureError):
            execute(graph, "RETURN 1 CREATE (:X)")
