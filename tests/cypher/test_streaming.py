"""The streaming execution pipeline and the driver-style Result API."""

from __future__ import annotations

import pytest

from repro.cypher import parse_query, query_is_read_only
from repro.cypher.executor import QueryExecutor
from repro.cypher.result import QueryStatistics, Result, ResultConsumedError
from repro.graph import PropertyGraph


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    for index in range(20):
        g.create_node(["Person"], {"seq": index, "flag": index % 2})
    return g


def stream_rows(graph, query, **kwargs):
    executor = QueryExecutor(graph, **kwargs)
    _, records = executor.stream(query)
    return list(records)


class TestStreamingPipeline:
    def test_stream_matches_eager_execution(self, graph):
        queries = [
            "MATCH (p:Person) RETURN p.seq AS seq",
            "MATCH (p:Person) WHERE p.flag = 1 RETURN p.seq AS seq",
            "MATCH (p:Person) RETURN p.seq AS seq SKIP 3 LIMIT 4",
            "MATCH (p:Person) RETURN DISTINCT p.flag AS flag",
            "UNWIND [3, 1, 2] AS x RETURN x",
            "MATCH (p:Person) WITH p.flag AS flag, count(*) AS n RETURN flag, n ORDER BY flag",
            # nonsensical negative bounds clamp to 0 in both engines
            "MATCH (p:Person) RETURN p.seq AS seq LIMIT 0",
            "MATCH (p:Person) RETURN p.seq AS seq SKIP 25",
        ]
        for query in queries:
            assert stream_rows(graph, query) == stream_rows(graph, query, eager=True), query

    def test_negative_skip_and_limit_clamp_to_zero(self, graph):
        assert stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq LIMIT $l",
                           parameters={"l": -1}) == []
        eager = stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq LIMIT $l",
                            parameters={"l": -1}, eager=True)
        assert eager == []
        full = stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq SKIP $s",
                           parameters={"s": -3})
        assert len(full) == 20
        assert full == stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq SKIP $s",
                                   parameters={"s": -3}, eager=True)

    def test_limit_terminates_scan_early(self, graph, monkeypatch):
        checked: list[int] = []
        original = QueryExecutor._node_satisfies

        def counting(self, node_pattern, node, row):
            checked.append(node.id)
            return original(self, node_pattern, node, row)

        monkeypatch.setattr(QueryExecutor, "_node_satisfies", counting)
        rows = stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq LIMIT 2")
        assert [row["seq"] for row in rows] == [0, 1]
        # Streaming stops pulling candidates once LIMIT is satisfied: far
        # fewer than the 20 nodes an eager scan would have checked.
        assert len(checked) <= 3

        checked.clear()
        stream_rows(graph, "MATCH (p:Person) RETURN p.seq AS seq LIMIT 2", eager=True)
        assert len(checked) == 20

    def test_exists_stops_at_first_witness(self, monkeypatch):
        graph = PropertyGraph()
        hub = graph.create_node(["Hub"], {})
        for index in range(50):
            spoke = graph.create_node(["Spoke"], {"seq": index})
            graph.create_relationship("Links", hub.id, spoke.id)
        checked: list[int] = []
        original = QueryExecutor._node_satisfies

        def counting(self, node_pattern, node, row):
            checked.append(node.id)
            return original(self, node_pattern, node, row)

        monkeypatch.setattr(QueryExecutor, "_node_satisfies", counting)
        rows = stream_rows(
            graph, "MATCH (h:Hub) WHERE EXISTS (h)-[:Links]->(:Spoke) RETURN h"
        )
        assert len(rows) == 1
        # 1 Hub candidate + a handful of Spoke candidates, not all 50.
        assert len(checked) <= 5

    def test_writes_apply_even_when_stream_is_not_consumed(self, graph):
        executor = QueryExecutor(graph)
        _, records = executor.stream("CREATE (:Alert {desc: 'pending'}) RETURN 1 AS one")
        # The CREATE is a pipeline breaker: it ran during stream construction.
        assert graph.count_nodes_with_label("Alert") == 1
        del records

    def test_return_must_be_last_still_enforced(self, graph):
        from repro.cypher.errors import UnsupportedFeatureError

        with pytest.raises(UnsupportedFeatureError):
            QueryExecutor(graph).stream("RETURN 1 AS x MATCH (p:Person)")

    def test_query_is_read_only(self):
        assert query_is_read_only(parse_query("MATCH (n) RETURN n"))
        assert query_is_read_only(parse_query("UNWIND [1] AS x WITH x RETURN x"))
        assert not query_is_read_only(parse_query("CREATE (:X)"))
        assert not query_is_read_only(parse_query("MATCH (n) SET n.a = 1"))
        assert not query_is_read_only(parse_query("MATCH (n) DETACH DELETE n"))
        assert not query_is_read_only(
            parse_query("CALL apoc.do.when(true, 'RETURN 1') YIELD value RETURN value")
        )


class TestResultAPI:
    def records(self):
        return [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_iterate_once(self):
        result = Result(["x"], iter(self.records()))
        assert [r["x"] for r in result] == [1, 2, 3]
        assert result.consumed
        # Driver semantics: a second consumption attempt is a caller bug.
        with pytest.raises(ResultConsumedError):
            list(result)

    def test_peek_does_not_consume(self):
        result = Result(["x"], iter(self.records()))
        assert result.peek() == {"x": 1}
        assert result.peek() == {"x": 1}
        assert [r["x"] for r in result] == [1, 2, 3]

    def test_peek_at_end_returns_none(self):
        result = Result(["x"], iter([]))
        assert result.peek() is None
        assert result.consumed

    def test_single_value_and_errors(self):
        assert Result(["x"], iter([{"x": 7}])).single() == 7
        assert Result(["x", "y"], iter([{"x": 7, "y": 8}])).single("y") == 8
        assert Result(["x", "y"], iter([{"x": 7, "y": 8}])).single() == {"x": 7, "y": 8}
        with pytest.raises(ValueError):
            Result(["x"], iter([])).single()
        with pytest.raises(ValueError):
            Result(["x"], iter(self.records())).single()

    def test_single_pulls_at_most_two_records(self):
        pulled: list[int] = []

        def generator():
            for value in range(100):
                pulled.append(value)
                yield {"x": value}

        result = Result(["x"], generator())
        with pytest.raises(ValueError):
            result.single()
        assert len(pulled) == 2

    def test_consume_returns_summary_with_counters(self):
        stats = QueryStatistics(nodes_created=2)
        result = Result(["x"], iter(self.records()), stats, query="Q", plan="PLAN")
        summary = result.consume()
        assert summary.counters is stats
        assert summary.as_dict()["counters"]["nodes_created"] == 2
        assert summary.plan == "PLAN"
        assert summary.query == "Q"
        with pytest.raises(ResultConsumedError):
            list(result)
        # consume() itself stays idempotent: the summary remains reachable.
        assert result.consume() is summary

    def test_finalize_callbacks_fire_once(self):
        calls: list[str] = []
        result = Result(
            ["x"], iter(self.records()), on_success=lambda: calls.append("ok")
        )
        list(result)
        result.consume()
        assert calls == ["ok"]

    def test_failure_callback_on_mid_stream_error(self):
        calls: list[str] = []

        def generator():
            yield {"x": 1}
            raise RuntimeError("boom")

        result = Result(
            ["x"],
            generator(),
            on_success=lambda: calls.append("ok"),
            on_failure=lambda: calls.append("fail"),
        )
        assert next(result) == {"x": 1}
        with pytest.raises(RuntimeError):
            next(result)
        assert calls == ["fail"]

    def test_close_finalizes_without_draining(self):
        pulled: list[int] = []

        def generator():
            for value in range(100):
                pulled.append(value)
                yield {"x": value}

        result = Result(["x"], generator())
        assert next(result)["x"] == 0
        result.close()
        assert result.consumed
        assert pulled == [0]
        with pytest.raises(ResultConsumedError):
            list(result)

    def test_close_after_materialization_stops_iteration(self):
        result = Result(["x"], iter(self.records()))
        assert len(result.rows) == 3  # materialises the stream
        result.close()
        assert list(result) == []
        assert result.peek() is None

    def test_consumed_result_raises_on_every_record_accessor(self):
        """Satellite regression: consuming twice raises, never returns []."""
        consumed = Result(["x"], iter(self.records()))
        consumed.consume()
        for access in (
            lambda r: list(r),
            lambda r: next(r),
            lambda r: r.peek(),
            lambda r: r.single(),
            lambda r: r.rows,
            lambda r: len(r),
            lambda r: bool(r),
            lambda r: r.values("x"),
            lambda r: r.to_table(),
        ):
            with pytest.raises(ResultConsumedError, match="already been consumed"):
                access(consumed)
        # Metadata stays reachable on a consumed result.
        assert consumed.keys() == ["x"]
        assert consumed.summary() is consumed.consume()

    def test_materialised_result_stays_rereadable(self):
        # Eager access *before* finalisation buffers the records; the
        # buffer is a legitimate random-access surface, not a second
        # consumption of the stream.
        result = Result(["x"], iter(self.records()))
        assert len(result.rows) == 3
        assert result.values("x") == [1, 2, 3]
        assert [r["x"] for r in result] == [1, 2, 3]
        assert list(result) == []  # buffered cursor is simply exhausted

    def test_session_run_result_raises_after_consume(self, graph):
        from repro.triggers.session import GraphSession

        session = GraphSession(graph=graph)
        result = session.run("MATCH (p:Person) RETURN p.seq AS seq")
        result.consume()
        with pytest.raises(ResultConsumedError):
            for _ in result:
                pass

    def test_eager_compat_surface(self):
        result = Result(["x"], iter(self.records()))
        assert result.rows == self.records()
        assert len(result) == 3
        assert bool(result)
        assert result.values("x") == [1, 2, 3]
        assert "x" in result.to_table()
        assert result.keys() == ["x"]
        # materialised records stay iterable afterwards
        assert [r["x"] for r in result] == [1, 2, 3]
