"""Optimizer v2 tests: composite indexes, histogram estimates, ordered
ORDER BY, connected hash joins and narrow-hop routing.

Everything the v2 planner adds is advisory — a seek, ordered scan or join
strategy can only change *how* rows are found, never *which* rows — so the
backbone of this suite is differential: every query runs under the planned
executor and under the baselines (eager, clause-order joins, naive paths)
and must produce identical rows.  EXPLAIN assertions then pin that the
interesting operator was actually chosen, so the differential is not
vacuously comparing two scans.
"""

from __future__ import annotations

import pytest

from repro.cypher import QueryExecutor, execute, explain
from repro.graph.model import Node, Relationship
from repro.graph.store import PropertyGraph
from repro.storage import MemoryIO
from repro.triggers.session import GraphSession

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

#: Executor configurations whose rows must always agree.
MODES = {
    "planned": {},
    "eager": {"eager": True},
    "clause-order": {"join_ordering": False},
    "naive-paths": {"naive_paths": True},
}


def canonical(value):
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, list):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    return value


def rows_in_mode(graph, query, **options):
    result = QueryExecutor(graph, **options).execute(query)
    return [
        tuple(sorted((k, canonical(v)) for k, v in row.items())) for row in result.rows
    ]


def assert_modes_agree(graph, query, ordered=False):
    """All executor modes return the same rows (same order when ``ordered``)."""
    results = {
        name: rows_in_mode(graph, query, **options) for name, options in MODES.items()
    }
    reference = results["planned"]
    for name, rows in results.items():
        if ordered:
            assert rows == reference, f"mode {name} disagrees on {query}"
        else:
            assert sorted(rows, key=repr) == sorted(reference, key=repr), (
                f"mode {name} disagrees on {query}"
            )
    return reference


def build_graph() -> PropertyGraph:
    """60 people in 6 groups / 3 tiers, hub-skewed KNOWS edges.

    ``score = (i * i) % 23`` gives duplicates (ORDER BY tie-breaks) and a
    non-uniform distribution (histogram vs heuristic); person 57 has no
    score at all (nulls sort last).  80% of KNOWS edges land on hub 0, so
    expanding to ``h`` is badly skewed — the connected-join scenario.
    """
    graph = PropertyGraph()
    people = []
    for i in range(60):
        properties = {"uid": i, "grp": i % 6, "tier": i % 3}
        if i != 57:
            properties["score"] = (i * i) % 23
        people.append(graph.create_node(["Person"], properties))
    hubs = [graph.create_node(["Hub"], {"hid": i}) for i in range(6)]
    for i, person in enumerate(people):
        hub = hubs[0 if i % 5 else i % 6]
        graph.create_relationship("KNOWS", person.id, hub.id)
    return graph


# ---------------------------------------------------------------------------
# composite indexes
# ---------------------------------------------------------------------------

COMPOSITE_CORPUS = [
    "MATCH (p:Person {grp: 2, tier: 1}) RETURN p.uid AS uid",
    "MATCH (p:Person {tier: 1, grp: 2}) RETURN p.uid AS uid",  # map order free
    "MATCH (p:Person {grp: 99, tier: 1}) RETURN p.uid AS uid",  # no match
    "MATCH (p:Person {grp: 2}) RETURN p.uid AS uid",  # prefix only: no seek
    "MATCH (p:Person {grp: 2, tier: null}) RETURN p.uid AS uid",  # null matches missing
    "MATCH (p:Person) WHERE p.grp = 2 AND p.tier = 1 RETURN p.uid AS uid",
    "MATCH (p:Person {grp: 2, tier: 1})-[:KNOWS]->(h) RETURN p.uid AS uid, h.hid AS hub",
]


class TestCompositeIndex:
    @pytest.mark.parametrize("query", COMPOSITE_CORPUS)
    def test_results_identical_with_and_without_composite(self, query):
        plain = build_graph()
        indexed = build_graph()
        indexed.create_composite_index("Person", ("grp", "tier"))
        plain_rows = sorted(rows_in_mode(plain, query), key=repr)
        indexed_rows = sorted(rows_in_mode(indexed, query), key=repr)
        assert plain_rows == indexed_rows

    def test_explain_shows_composite_seek_with_combined_estimate(self):
        graph = build_graph()
        graph.create_composite_index("Person", ("grp", "tier"))
        text = explain("MATCH (p:Person {grp: 2, tier: 1}) RETURN p.uid", graph)
        assert "CompositeIndexSeek(Person(grp = 2, tier = 1))" in text
        # 60 people / (6 groups * 3 tiers) — the combined selectivity, not
        # the 10 rows a single-property grp index would estimate.
        assert "est~10 rows" in text

    def test_inline_null_never_becomes_a_composite_probe(self):
        graph = build_graph()
        graph.create_composite_index("Person", ("grp", "tier"))
        # {tier: null} matches nodes *missing* tier; every person has one.
        rows = execute(graph, "MATCH (p:Person {grp: 2, tier: null}) RETURN p.uid AS uid").rows
        assert rows == []

    def test_drop_falls_back_to_scan(self):
        graph = build_graph()
        graph.create_composite_index("Person", ("grp", "tier"))
        query = "MATCH (p:Person {grp: 2, tier: 1}) RETURN count(*) AS n"
        before = execute(graph, query).rows
        graph.drop_composite_index("Person", ("grp", "tier"))
        assert execute(graph, query).rows == before
        assert "CompositeIndexSeek" not in explain(query, graph)

    def test_composite_ddl_survives_restart(self):
        io = MemoryIO()
        session = GraphSession(path="/db", storage_io=io)
        for i in range(12):
            session.run(f"CREATE (:Person {{uid: {i}, grp: {i % 3}, tier: {i % 2}}})")
        session.graph.create_composite_index("Person", ("grp", "tier"))
        expected = execute(
            session.graph, "MATCH (p:Person {grp: 1, tier: 0}) RETURN p.uid AS uid"
        ).rows
        session.close()

        recovered = GraphSession(path="/db", storage_io=io)
        assert recovered.graph.composite_indexes() == [("Person", ("grp", "tier"))]
        text = explain("MATCH (p:Person {grp: 1, tier: 0}) RETURN p.uid", recovered.graph)
        assert "CompositeIndexSeek" in text
        rows = execute(
            recovered.graph, "MATCH (p:Person {grp: 1, tier: 0}) RETURN p.uid AS uid"
        ).rows
        assert sorted(r["uid"] for r in rows) == sorted(r["uid"] for r in expected)
        recovered.close()


# ---------------------------------------------------------------------------
# histogram estimates and the empty-range clamp
# ---------------------------------------------------------------------------

class TestRangeEstimates:
    def test_provably_empty_range_estimates_zero(self):
        graph = build_graph()
        graph.create_range_index("Person", "score")
        text = explain("MATCH (p:Person) WHERE p.score > 1000 RETURN p.uid", graph)
        assert "IndexRangeSeek(Person.score > 1000) est~0 rows" in text
        assert execute(graph, "MATCH (p:Person) WHERE p.score > 1000 RETURN p.uid").rows == []

    def test_inverted_range_estimates_zero_rows(self):
        graph = build_graph()
        graph.create_range_index("Person", "score")
        query = "MATCH (p:Person) WHERE p.score > 50 AND p.score < 10 RETURN p.uid"
        assert "est~0 rows" in explain(query, graph)
        assert execute(graph, query).rows == []

    def test_histogram_estimate_tracks_skewed_range(self):
        # score = (i*i) % 23 is far from uniform; the histogram estimate
        # must land within a bucket-width of the true count while the
        # one-third heuristic (~20 rows here) would not.
        graph = build_graph()
        graph.create_range_index("Person", "score")
        actual = len(execute(graph, "MATCH (p:Person) WHERE p.score >= 18 RETURN p.uid").rows)
        text = explain("MATCH (p:Person) WHERE p.score >= 18 RETURN p.uid", graph)
        import re

        match = re.search(r"IndexRangeSeek\(Person\.score >= 18\) est~(\d+)", text)
        assert match, text
        estimate = int(match.group(1))
        assert abs(estimate - actual) <= 3, (estimate, actual)

    def test_non_sargable_conjuncts_shrink_the_estimate(self):
        graph = build_graph()
        graph.create_property_index("Person", "grp")
        text = explain("MATCH (p:Person) WHERE p.grp = 1 AND p.tier <> 0 RETURN p.uid", graph)
        assert "IndexSeek(Person.grp = 1) est~10 rows" in text
        # both numbers surface: the access path's and the post-WHERE one
        assert "rows after WHERE" in text


# ---------------------------------------------------------------------------
# index-backed ORDER BY
# ---------------------------------------------------------------------------

ORDERED_CORPUS = [
    "MATCH (p:Person) RETURN p.uid AS uid, p.score AS score ORDER BY p.score LIMIT 7",
    "MATCH (p:Person) RETURN p.uid AS uid, p.score AS score ORDER BY p.score DESC LIMIT 7",
    "MATCH (p:Person) RETURN p.uid AS uid ORDER BY p.score DESC SKIP 3 LIMIT 5",
    "MATCH (p:Person) RETURN p.uid AS uid, p.score AS s ORDER BY s LIMIT 6",  # alias key
    "MATCH (p:Person) RETURN p.uid AS uid ORDER BY p.score",  # no LIMIT: Sort route
    "MATCH (p:Person) RETURN p.uid AS uid ORDER BY p.score DESC LIMIT 100",  # over-long
]


class TestOrderedScan:
    @pytest.mark.parametrize("query", ORDERED_CORPUS)
    def test_ordered_rows_identical_to_sorted_baselines(self, query):
        graph = build_graph()
        graph.create_range_index("Person", "score")
        assert "OrderedIndexScan(Person.score" in explain(query, graph)
        assert_modes_agree(graph, query, ordered=True)

    def test_rows_identical_with_and_without_ordered_index(self):
        query = ORDERED_CORPUS[1]
        plain = build_graph()
        indexed = build_graph()
        indexed.create_range_index("Person", "score")
        assert rows_in_mode(plain, query) == rows_in_mode(indexed, query)

    def test_missing_property_sorts_last_both_directions(self):
        graph = build_graph()  # person 57 has no score
        graph.create_range_index("Person", "score")
        for direction in ("", " DESC"):
            query = f"MATCH (p:Person) RETURN p.uid AS uid ORDER BY p.score{direction}"
            rows = rows_in_mode(graph, query, eager=True)
            assert rows_in_mode(graph, query) == rows
            assert rows[-1] == (("uid", 57),)

    def test_runtime_fallback_when_scan_cannot_answer(self):
        # A string score splits the index into two type classes *without*
        # any DDL (no epoch bump, plans stay cached): the ordered scan
        # declines at run time and the executor must fall back to the heap.
        graph = build_graph()
        graph.create_range_index("Person", "score")
        query = "MATCH (p:Person) WHERE p.uid < 20 RETURN p.uid AS uid"
        executor = QueryExecutor(graph)
        ordered = "MATCH (p:Person) RETURN p.uid AS uid ORDER BY p.score LIMIT 4"
        first = executor.execute(ordered).rows
        graph.create_node(["Person"], {"uid": 1000, "score": "poison"})
        with pytest.raises(Exception):
            # the sort itself must now raise, exactly like the eager route
            QueryExecutor(graph, eager=True).execute(ordered)
        with pytest.raises(Exception):
            executor.execute(ordered)
        assert first  # the pre-poison run produced rows


# ---------------------------------------------------------------------------
# connected hash joins
# ---------------------------------------------------------------------------

JOIN_QUERY = (
    "MATCH (a:Person)-[:KNOWS]->(h), (b:Person)-[:KNOWS]->(h) "
    "WHERE a.uid < b.uid RETURN count(*) AS n"
)


class TestConnectedHashJoin:
    def test_planner_picks_hash_join_for_skewed_shared_expansion(self):
        graph = build_graph()
        text = explain(JOIN_QUERY, graph)
        assert "HashJoin(pattern[1], shared: h)" in text

    def test_rows_identical_across_all_modes(self):
        graph = build_graph()
        assert_modes_agree(graph, JOIN_QUERY)
        assert_modes_agree(
            graph,
            "MATCH (a:Person)-[:KNOWS]->(h), (b:Person)-[:KNOWS]->(h) "
            "RETURN a.uid AS a, b.uid AS b, h.hid AS h",
        )

    def test_optional_null_padding_falls_back_per_row(self):
        # Lonely people bind h to null in the OPTIONAL clause; the second
        # MATCH's connected join sees a non-node join variable and must
        # take the nested-loop route for those rows instead of probing.
        graph = build_graph()
        lonely = graph.create_node(["Person"], {"uid": 999})
        query = (
            "MATCH (x:Person) WHERE x.uid IN [0, 999] "
            "OPTIONAL MATCH (x)-[:KNOWS]->(h) "
            "OPTIONAL MATCH (a:Person)-[:KNOWS]->(h), (b:Person)-[:KNOWS]->(h) "
            "RETURN x.uid AS x, count(*) AS n"
        )
        assert_modes_agree(graph, query)
        assert lonely.id is not None

    def test_anchored_patterns_keep_the_nested_loop(self):
        # When the build pattern's own (possibly reversed) start *is* the
        # shared variable, the anchored expansion is cheap and no hash
        # join should appear.
        graph = build_graph()
        query = (
            "MATCH (a:Hub {hid: 0}), (b:Person)-[:KNOWS]->(a:Hub) "
            "RETURN count(*) AS n"
        )
        assert "shared:" not in explain(query, graph)
        assert_modes_agree(graph, query)


# ---------------------------------------------------------------------------
# narrow-hop routing through the reachability accelerator
# ---------------------------------------------------------------------------

def build_tree(depth: int = 6) -> PropertyGraph:
    """A binary Part/CHILD tree, deep enough that a 2-hop window is narrow."""
    graph = PropertyGraph()
    root = graph.create_node(["Part"], {"pid": 0})
    frontier = [root]
    pid = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _child in range(2):
                node = graph.create_node(["Part"], {"pid": pid})
                pid += 1
                graph.create_relationship("CHILD", parent.id, node.id)
                next_frontier.append(node)
        frontier = next_frontier
    graph.create_property_index("Part", "pid")
    graph.create_reachability_index("CHILD")
    return graph


class TestNarrowHopRouting:
    def test_explain_shows_route_and_reason(self):
        graph = build_tree()
        narrow = explain(
            "MATCH (a:Part {pid: 0})-[:CHILD*1..2]->(x) RETURN count(*) AS n", graph
        )
        assert "reachability:dfs" in narrow and "hop window ..2 shallow" in narrow
        broad = explain(
            "MATCH (a:Part {pid: 0})-[:CHILD*1..12]->(x) RETURN count(*) AS n", graph
        )
        assert "reachability:interval" in broad and "covers height-" in broad

    def test_dfs_route_runs_and_matches_every_baseline(self):
        graph = build_tree()
        accelerator = graph.reachability_index("CHILD")
        query = "MATCH (a:Part {pid: 0})-[:CHILD*1..2]->(x) RETURN x.pid AS pid"
        reference = assert_modes_agree(graph, query)
        assert len(reference) == 6  # 2 children + 4 grandchildren
        assert accelerator.dfs_walks > 0

    def test_broad_window_still_takes_the_interval_scan(self):
        graph = build_tree()
        accelerator = graph.reachability_index("CHILD")
        query = "MATCH (a:Part {pid: 0})-[:CHILD*1..12]->(x) RETURN count(*) AS n"
        rows = execute(graph, query).rows
        assert rows == [{"n": 2 ** 7 - 2}]
        assert accelerator.interval_scans > 0
