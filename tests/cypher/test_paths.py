"""Path-query subsystem: var-length expansion, shortestPath, reachability index.

Covers the Path value type, parser surface (including positioned error
messages), both expansion routes (naive recursive vs. iterative DFS),
shortestPath semantics, the XPath-style reachability accelerator (build,
decline, invalidation), planner/EXPLAIN integration, and persistence of
reachability-index DDL through snapshots and the WAL.
"""

import pytest

from repro.cypher import QueryExecutor, execute, explain, parse_query
from repro.cypher.errors import CypherSyntaxError, UnsupportedFeatureError
from repro.graph import PropertyGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.paths import Path, ReachabilityIndex


def names(result, column="name"):
    return [row[column] for row in result]


@pytest.fixture
def chain_graph():
    """a -> b -> c -> d linear KNOWS chain."""
    graph = PropertyGraph()
    nodes = {}
    for name in "abcd":
        nodes[name] = graph.create_node(["Person"], {"name": name})
    for src, dst in [("a", "b"), ("b", "c"), ("c", "d")]:
        graph.create_relationship("KNOWS", nodes[src].id, nodes[dst].id)
    return graph, nodes


@pytest.fixture
def diamond_graph():
    """a -> {b, c} -> d with a direct a -> d shortcut."""
    graph = PropertyGraph()
    nodes = {}
    for name in "abcd":
        nodes[name] = graph.create_node(["Person"], {"name": name})
    for src, dst in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("a", "d")]:
        graph.create_relationship("KNOWS", nodes[src].id, nodes[dst].id)
    return graph, nodes


# ---------------------------------------------------------------------------
# the Path value
# ---------------------------------------------------------------------------


class TestPathValue:
    def make_path(self, chain_graph):
        graph, nodes = chain_graph
        rels = sorted(graph.relationships_with_type("KNOWS"), key=lambda r: r.id)
        return Path(
            [nodes["a"], nodes["b"], nodes["c"]],
            rels[:2],
        )

    def test_length_counts_relationships(self, chain_graph):
        path = self.make_path(chain_graph)
        assert path.length == 2
        assert len(path.nodes) == 3

    def test_invalid_shape_rejected(self, chain_graph):
        graph, nodes = chain_graph
        with pytest.raises(ValueError):
            Path([nodes["a"]], graph.relationships_with_type("KNOWS"))

    def test_zero_length_path(self, chain_graph):
        _, nodes = chain_graph
        path = Path([nodes["a"]], [])
        assert path.length == 0
        assert path.start_node is path.end_node

    def test_mapping_protocol(self, chain_graph):
        path = self.make_path(chain_graph)
        assert set(path) == {"nodes", "relationships"}
        assert len(path["nodes"]) == 3
        assert len(path["relationships"]) == 2
        with pytest.raises(KeyError):
            path["bogus"]

    def test_equality_and_hash(self, chain_graph):
        first = self.make_path(chain_graph)
        second = self.make_path(chain_graph)
        assert first == second
        assert hash(first) == hash(second)
        graph, nodes = chain_graph
        shorter = Path([nodes["a"]], [])
        assert first != shorter


# ---------------------------------------------------------------------------
# parser surface
# ---------------------------------------------------------------------------


class TestPathParsing:
    def test_varlength_forms_parse(self):
        for form in ("*", "*2", "*..3", "*1..", "*1..3", "*0..2"):
            parse_query(f"MATCH (a)-[:KNOWS{form}]->(b) RETURN b")

    def test_shortest_path_parses(self):
        query = parse_query("MATCH p = shortestPath((a)-[:KNOWS*..4]->(b)) RETURN p")
        pattern = query.clauses[0].patterns[0]
        assert pattern.shortest == "shortestPath"
        assert pattern.variable == "p"

    def test_shortest_path_without_name(self):
        query = parse_query("MATCH shortestPath((a)-[:KNOWS*]->(b)) RETURN a")
        assert query.clauses[0].patterns[0].shortest == "shortestPath"

    def test_all_shortest_paths_error_names_token_and_position(self):
        with pytest.raises(UnsupportedFeatureError) as err:
            parse_query("MATCH p = allShortestPaths((a)-[:R*]->(b)) RETURN p")
        message = str(err.value)
        assert "allShortestPaths" in message
        assert "line 1" in message

    def test_shortest_path_multi_hop_pattern_rejected_with_position(self):
        with pytest.raises(CypherSyntaxError) as err:
            parse_query("MATCH p = shortestPath((a)-[:R]->(b)-[:R]->(c)) RETURN p")
        assert "single-relationship" in str(err.value)
        assert "line 1" in str(err.value)

    def test_both_directions_error_carries_position(self):
        with pytest.raises(CypherSyntaxError) as err:
            parse_query("MATCH (a)<-[:R]->(b) RETURN a")
        assert "line 1" in str(err.value)
        assert err.value.position is not None  # offset captured for tooling


# ---------------------------------------------------------------------------
# variable-length expansion
# ---------------------------------------------------------------------------


class TestVarLengthExpand:
    def test_bounded_expansion(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (a {name: 'a'})-[:KNOWS*1..2]->(b) RETURN b.name AS name",
        )
        assert names(result) == ["b", "c"]

    def test_zero_hop_includes_start(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (a {name: 'a'})-[:KNOWS*0..1]->(b) RETURN b.name AS name",
        )
        assert names(result) == ["a", "b"]

    def test_exact_hop_count(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (a {name: 'a'})-[:KNOWS*3]->(b) RETURN b.name AS name",
        )
        assert names(result) == ["d"]

    def test_incoming_direction(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (d {name: 'd'})<-[:KNOWS*1..2]-(b) RETURN b.name AS name",
        )
        assert sorted(names(result)) == ["b", "c"]

    def test_undirected_traversal(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (b {name: 'b'})-[:KNOWS*1]-(x) RETURN x.name AS name",
        )
        assert sorted(names(result)) == ["a", "c"]

    def test_relationship_uniqueness_on_cycle(self):
        graph = PropertyGraph()
        a = graph.create_node(["N"], {"name": "a"})
        b = graph.create_node(["N"], {"name": "b"})
        graph.create_relationship("R", a.id, b.id)
        graph.create_relationship("R", b.id, a.id)
        result = execute(graph, "MATCH (x {name: 'a'})-[:R*]->(y) RETURN y.name AS name")
        # each relationship used at most once per path: a->b, a->b->a, stop
        assert names(result) == ["b", "a"]

    def test_named_path_has_all_intermediate_nodes(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = (a {name: 'a'})-[:KNOWS*3]->(d) "
            "RETURN length(p) AS len, [n IN nodes(p) | n.name] AS hops, "
            "size(relationships(p)) AS rels",
        )
        rows = list(result)
        assert rows == [{"len": 3, "hops": ["a", "b", "c", "d"], "rels": 3}]

    def test_rel_variable_binds_hop_list(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH (a {name: 'a'})-[r:KNOWS*2]->(c) RETURN size(r) AS hops",
        )
        assert list(result) == [{"hops": 2}]

    def test_naive_and_iterative_agree(self, diamond_graph):
        graph, _ = diamond_graph
        query = "MATCH p = (a {name: 'a'})-[:KNOWS*1..3]->(x) RETURN [n IN nodes(p) | n.name] AS walk"
        fast = [row["walk"] for row in QueryExecutor(graph).execute(query)]
        naive = [row["walk"] for row in QueryExecutor(graph, naive_paths=True).execute(query)]
        assert fast == naive
        assert len(fast) == len(set(map(tuple, fast)))  # no duplicate walks

    def test_unbounded_hops_are_capped(self):
        graph = PropertyGraph()
        prev = graph.create_node(["N"], {"i": 0})
        for i in range(1, 40):
            node = graph.create_node(["N"], {"i": i})
            graph.create_relationship("NEXT", prev.id, node.id)
            prev = node
        result = execute(graph, "MATCH (s {i: 0})-[:NEXT*]->(x) RETURN count(x) AS n")
        assert list(result) == [{"n": 15}]  # DEFAULT_MAX_HOPS


# ---------------------------------------------------------------------------
# shortestPath
# ---------------------------------------------------------------------------


class TestShortestPath:
    def test_bound_pair(self, diamond_graph):
        graph, _ = diamond_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*..5]->(d {name: 'd'})) "
            "RETURN length(p) AS len",
        )
        assert list(result) == [{"len": 1}]  # direct a->d shortcut wins

    def test_tie_break_is_lexicographic_on_rel_ids(self):
        graph = PropertyGraph()
        a = graph.create_node(["N"], {"name": "a"})
        b = graph.create_node(["N"], {"name": "b"})
        first = graph.create_relationship("R", a.id, b.id)
        graph.create_relationship("R", a.id, b.id)  # parallel edge, higher id
        result = execute(
            graph,
            "MATCH p = shortestPath((x {name: 'a'})-[:R*..3]->(y {name: 'b'})) "
            "RETURN [r IN relationships(p) | id(r)] AS ids",
        )
        assert list(result) == [{"ids": [first.id]}]

    def test_same_node_no_match_by_default(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*..3]->(b {name: 'a'})) "
            "RETURN length(p) AS len",
        )
        assert list(result) == []

    def test_same_node_zero_min_yields_zero_length(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*0..3]->(b {name: 'a'})) "
            "RETURN length(p) AS len",
        )
        assert list(result) == [{"len": 0}]

    def test_unbound_target_sorted_by_distance(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*..3]->(x)) "
            "RETURN x.name AS name, length(p) AS len",
        )
        rows = list(result)
        assert rows == [
            {"name": "b", "len": 1},
            {"name": "c", "len": 2},
            {"name": "d", "len": 3},
        ]

    def test_undirected_shortest(self, chain_graph):
        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((d {name: 'd'})-[:KNOWS*..5]-(a {name: 'a'})) "
            "RETURN length(p) AS len",
        )
        assert list(result) == [{"len": 3}]

    def test_fast_and_naive_routes_agree(self, diamond_graph):
        graph, _ = diamond_graph
        query = (
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*..4]->(x)) "
            "RETURN x.name AS name, [r IN relationships(p) | id(r)] AS ids"
        )
        fast = list(QueryExecutor(graph).execute(query))
        naive = list(QueryExecutor(graph, naive_paths=True).execute(query))
        assert fast == naive

    def test_min_hops_forces_longer_walk(self, diamond_graph):
        graph, _ = diamond_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*2..4]->(d {name: 'd'})) "
            "RETURN length(p) AS len",
        )
        assert list(result) == [{"len": 2}]  # shortcut excluded by min_hops

    def test_path_wire_encoding(self, chain_graph):
        from repro.server.wire import to_wire

        graph, _ = chain_graph
        result = execute(
            graph,
            "MATCH p = shortestPath((a {name: 'a'})-[:KNOWS*..3]->(d {name: 'd'})) RETURN p",
        )
        payload = to_wire(list(result)[0]["p"])
        assert payload["$type"] == "path"
        assert payload["length"] == 3
        assert [n["properties"]["name"] for n in payload["nodes"]] == ["a", "b", "c", "d"]
        assert len(payload["relationships"]) == 3


# ---------------------------------------------------------------------------
# reachability accelerator
# ---------------------------------------------------------------------------


def tree_graph(depth=3, fanout=2):
    """Complete tree of PART_OF relationships, root at depth 0."""
    graph = PropertyGraph()
    root = graph.create_node(["Part"], {"name": "root", "depth": 0})
    frontier = [root]
    for level in range(1, depth + 1):
        next_frontier = []
        for parent in frontier:
            for child_index in range(fanout):
                child = graph.create_node(
                    ["Part"], {"name": f"{parent.properties['name']}.{child_index}", "depth": level}
                )
                graph.create_relationship("PART_OF", parent.id, child.id)
                next_frontier.append(child)
        frontier = next_frontier
    return graph, root


class TestReachabilityIndex:
    def test_accelerated_matches_dfs(self):
        graph, root = tree_graph()
        query = "MATCH (r {name: 'root'})-[:PART_OF*]->(x) RETURN x.name AS name"
        plain = names(execute(graph, query))
        graph.create_reachability_index("PART_OF")
        accelerated = names(execute(graph, query))
        assert accelerated == plain  # identical rows in identical order

    def test_hop_window_respected(self):
        graph, _ = tree_graph(depth=3)
        graph.create_reachability_index("PART_OF")
        result = execute(
            graph,
            "MATCH (r {name: 'root'})-[:PART_OF*2..2]->(x) RETURN x.depth AS depth",
        )
        assert {row["depth"] for row in result} == {2}

    def test_bound_target_containment_probe(self):
        graph, _ = tree_graph(depth=3)
        graph.create_reachability_index("PART_OF")
        result = execute(
            graph,
            "MATCH (r {name: 'root'})-[:PART_OF*]->(x {name: 'root.1.0.1'}) "
            "RETURN x.name AS name",
        )
        assert names(result) == ["root.1.0.1"]

    def test_incoming_direction_walks_ancestors(self):
        graph, _ = tree_graph(depth=3)
        graph.create_reachability_index("PART_OF")
        result = execute(
            graph,
            "MATCH (x {name: 'root.1.0.1'})<-[:PART_OF*]-(a) RETURN a.name AS name",
        )
        assert names(result) == ["root.1.0", "root.1", "root"]

    def test_mutation_invalidates_and_rebuilds(self):
        graph, root = tree_graph(depth=2)
        graph.create_reachability_index("PART_OF")
        index = graph.reachability_index("PART_OF")
        assert index.ensure(graph)
        builds = index.builds
        leaf = graph.create_node(["Part"], {"name": "extra"})
        graph.create_relationship("PART_OF", root.id, leaf.id)
        assert index.dirty
        result = execute(
            graph, "MATCH (r {name: 'root'})-[:PART_OF*1..1]->(x) RETURN count(x) AS n"
        )
        assert list(result) == [{"n": 3}]
        assert index.builds == builds + 1

    def test_cycle_declines_to_dfs(self):
        graph = PropertyGraph()
        a = graph.create_node(["N"], {"name": "a"})
        b = graph.create_node(["N"], {"name": "b"})
        graph.create_relationship("R", a.id, b.id)
        graph.create_relationship("R", b.id, a.id)
        graph.create_reachability_index("R")
        index = graph.reachability_index("R")
        assert not index.ensure(graph)
        assert index.declined
        # the query still answers correctly through the DFS fallback
        result = execute(graph, "MATCH (x {name: 'a'})-[:R*]->(y) RETURN y.name AS name")
        assert names(result) == ["b", "a"]

    def test_parallel_edges_decline(self):
        graph = PropertyGraph()
        a = graph.create_node(["N"])
        b = graph.create_node(["N"])
        graph.create_relationship("R", a.id, b.id)
        graph.create_relationship("R", a.id, b.id)
        index = ReachabilityIndex("R")
        assert not index.ensure(graph)

    def test_self_loop_declines(self):
        graph = PropertyGraph()
        a = graph.create_node(["N"])
        graph.create_relationship("R", a.id, a.id)
        index = ReachabilityIndex("R")
        assert not index.ensure(graph)

    def test_forest_with_multiple_roots(self):
        graph = PropertyGraph()
        roots = [graph.create_node(["N"], {"name": f"r{i}"}) for i in range(2)]
        for i, root in enumerate(roots):
            child = graph.create_node(["N"], {"name": f"c{i}"})
            graph.create_relationship("R", root.id, child.id)
        index = ReachabilityIndex("R")
        assert index.ensure(graph)
        assert index.entry_count() == 4

    def test_other_rel_types_do_not_invalidate(self):
        graph, root = tree_graph(depth=2)
        graph.create_reachability_index("PART_OF")
        index = graph.reachability_index("PART_OF")
        index.ensure(graph)
        other = graph.create_node(["Other"])
        graph.create_relationship("UNRELATED", root.id, other.id)
        assert not index.dirty


# ---------------------------------------------------------------------------
# planner / EXPLAIN integration
# ---------------------------------------------------------------------------


class TestPathPlanning:
    def test_explain_names_varlength_operator(self, chain_graph):
        graph, _ = chain_graph
        description = explain("MATCH (a)-[:KNOWS*1..3]->(b) RETURN b", graph)
        assert "VarLengthExpand(-[:KNOWS*1..3]->(), dfs)" in description

    def test_explain_switches_to_reachability_mode(self, chain_graph):
        graph, _ = chain_graph
        graph.create_reachability_index("KNOWS")
        description = explain("MATCH (a)-[:KNOWS*]->(b) RETURN b", graph)
        assert "reachability" in description

    def test_explain_names_shortest_path_operator(self, chain_graph):
        graph, _ = chain_graph
        description = explain("MATCH p = shortestPath((a)-[:KNOWS*..4]->(b)) RETURN p", graph)
        assert "ShortestPath(" in description
        assert "bfs" in description

    def test_reachability_requires_index_and_direction(self, chain_graph):
        graph, _ = chain_graph
        graph.create_reachability_index("KNOWS")
        # undirected traversal cannot use the interval encoding
        description = explain("MATCH (a)-[:KNOWS*]-(b) RETURN b", graph)
        assert "reachability" not in description

    def test_plan_cache_invalidated_by_reachability_ddl(self, chain_graph):
        graph, _ = chain_graph
        before = explain("MATCH (a)-[:KNOWS*]->(b) RETURN b", graph)
        assert "reachability" not in before
        graph.create_reachability_index("KNOWS")
        after = explain("MATCH (a)-[:KNOWS*]->(b) RETURN b", graph)
        assert "reachability" in after

    def test_variable_length_cardinality_estimate(self, chain_graph):
        from repro.graph.statistics import CardinalityEstimator

        graph, _ = chain_graph
        estimator = CardinalityEstimator(graph)
        estimate = estimator.variable_length_cardinality(("KNOWS",), 1, 3)
        single = estimator.expansion_factor(("KNOWS",))
        assert estimate == pytest.approx(single + single**2 + single**3)


# ---------------------------------------------------------------------------
# persistence of reachability-index DDL
# ---------------------------------------------------------------------------


class TestReachabilityPersistence:
    def test_snapshot_round_trip(self, chain_graph):
        graph, _ = chain_graph
        graph.create_reachability_index("KNOWS")
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.reachability_indexes() == ["KNOWS"]

    def test_drop_removes_from_catalog(self, chain_graph):
        graph, _ = chain_graph
        graph.create_reachability_index("KNOWS")
        graph.drop_reachability_index("KNOWS")
        assert graph.reachability_indexes() == []
        assert graph.reachability_index("KNOWS") is None

    def test_copy_preserves_catalog(self, chain_graph):
        graph, _ = chain_graph
        graph.create_reachability_index("KNOWS")
        assert graph.copy().reachability_indexes() == ["KNOWS"]

    def test_wal_replay_restores_index(self, chain_graph):
        from repro.storage import DurableStore, MemoryIO

        io = MemoryIO()
        store = DurableStore("/db", io=io)
        store.open()
        store.log_index("create", "reachability", "KNOWS", None)
        store.close()
        recovered = DurableStore("/db", io=io).open()
        assert recovered.graph.reachability_indexes() == ["KNOWS"]
