"""Tests for the CoV2K generator, workload streams and synthetic graphs."""


from repro.datasets import (
    Cov2kProfile,
    cov2k_schema,
    designation_change_stream,
    generate_cov2k,
    hospital_setup,
    icu_admission_stream,
    lineage_assignment_stream,
    mixed_update_stream,
    mutation_discovery_stream,
    preferential_attachment_graph,
    random_graph,
    replay,
)
from repro.schema import validate_graph
from repro.triggers import GraphSession


class TestCov2kSchema:
    def test_schema_contents(self):
        schema = cov2k_schema()
        assert schema.strict
        assert schema.has_node_label("Mutation")
        assert schema.has_node_label("IcuPatient")
        assert schema.has_edge_label("ConnectedTo")
        chain = [t.label for t in schema.supertypes("IcuPatient")]
        assert chain == ["HospitalizedPatient", "Patient"]


class TestCov2kGenerator:
    def test_default_population_sizes(self):
        dataset = generate_cov2k()
        graph = dataset.graph
        assert graph.count_nodes_with_label("Mutation") == dataset.profile.mutations
        assert graph.count_nodes_with_label("Sequence") == dataset.profile.sequences
        assert graph.count_nodes_with_label("Patient") == dataset.profile.patients
        assert graph.count_nodes_with_label("Hospital") == dataset.profile.hospitals
        # every hospitalized patient is also a patient (type hierarchy labels)
        assert graph.count_nodes_with_label("HospitalizedPatient") <= graph.count_nodes_with_label("Patient")
        assert graph.count_nodes_with_label("IcuPatient") <= graph.count_nodes_with_label(
            "HospitalizedPatient"
        )

    def test_deterministic_under_seed(self):
        first = generate_cov2k(Cov2kProfile(seed=42))
        second = generate_cov2k(Cov2kProfile(seed=42))
        assert first.graph.node_count() == second.graph.node_count()
        assert first.graph.relationship_count() == second.graph.relationship_count()
        names_first = sorted(n.properties["name"] for n in first.graph.nodes_with_label("Mutation"))
        names_second = sorted(n.properties["name"] for n in second.graph.nodes_with_label("Mutation"))
        assert names_first == names_second

    def test_conforms_to_schema(self):
        dataset = generate_cov2k(Cov2kProfile(patients=40, sequences=30, mutations=15))
        violations = validate_graph(dataset.graph, dataset.schema)
        assert violations == []

    def test_scaled_profile(self):
        profile = Cov2kProfile().scaled(0.1)
        assert profile.patients == 15
        assert profile.hospitals >= 2
        dataset = generate_cov2k(profile)
        assert dataset.graph.count_nodes_with_label("Patient") == 15

    def test_relationships_present(self):
        dataset = generate_cov2k(Cov2kProfile(patients=30, sequences=20))
        graph = dataset.graph
        for rel_type in ("Risk", "FoundIn", "BelongsTo", "TreatedAt", "LocatedIn", "ConnectedTo"):
            assert graph.count_relationships_with_type(rel_type) > 0


class TestWorkloads:
    def test_mutation_stream_counts(self):
        statements = mutation_discovery_stream(count=20, critical_fraction=0.5, seed=1)
        # one setup statement plus one per mutation
        assert len(statements) == 21
        critical = [s for s in statements if "Risk" in s.query]
        assert 0 < len(critical) < 20

    def test_lineage_stream_structure(self):
        statements = lineage_assignment_stream(sequences=10, lineages=2, critical_every=5)
        assert any("BelongsTo" in s.query for s in statements)
        assert any("FoundIn" in s.query for s in statements)

    def test_designation_stream(self):
        statements = designation_change_stream(changes=4)
        assert len(statements) == 8
        assert any("SET l.whoDesignation" in s.query for s in statements)

    def test_icu_admission_batching(self):
        single = icu_admission_stream(admissions=6, batch_size=1)
        batched = icu_admission_stream(admissions=6, batch_size=3)
        assert len(single) == 6
        assert len(batched) == 2
        assert len(batched[0].parameters["ssns"]) == 3

    def test_replay_against_session(self):
        session = GraphSession()
        replay(session, hospital_setup(hospitals=2, icu_beds=4))
        count = replay(session, icu_admission_stream(admissions=5, hospital="Sacco"))
        assert count == 5
        assert session.graph.count_nodes_with_label("IcuPatient") == 5
        assert session.graph.count_relationships_with_type("TreatedAt") == 5

    def test_mixed_stream_replay(self):
        session = GraphSession()
        statements = mixed_update_stream(operations=30, seed=3)
        replay(session, statements)
        assert session.graph.count_nodes_with_label("Entity") > 0


class TestSyntheticGraphs:
    def test_random_graph_sizes(self):
        graph = random_graph(nodes=200, relationships=400, seed=5)
        assert graph.node_count() == 200
        assert graph.relationship_count() == 400

    def test_random_graph_deterministic(self):
        first = random_graph(nodes=50, relationships=100, seed=9)
        second = random_graph(nodes=50, relationships=100, seed=9)
        assert sorted(n.properties["key"] for n in first.nodes()) == sorted(
            n.properties["key"] for n in second.nodes()
        )

    def test_preferential_attachment_hubs(self):
        graph = preferential_attachment_graph(nodes=300, edges_per_node=2, seed=5)
        degrees = [graph.degree(n.id) for n in graph.nodes()]
        assert max(degrees) > 10  # hubs emerge
        assert graph.relationship_count() > 250
