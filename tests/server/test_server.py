"""End-to-end tests for the asyncio HTTP/JSON front door."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.database import GraphDatabase
from repro.server import run_in_thread
from repro.server.app import DatabaseServer
from repro.storage import MemoryIO


class Client:
    """A keep-alive JSON client over one ``http.client`` connection."""

    def __init__(self, host: str, port: int) -> None:
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def request(self, method: str, path: str, body: dict | None = None):
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        self.conn.request(method, path, body=payload, headers=headers)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")

    def get(self, path: str):
        return self.request("GET", path)

    def post(self, path: str, body: dict):
        return self.request("POST", path, body)

    def close(self) -> None:
        self.conn.close()


@pytest.fixture
def server():
    handle = run_in_thread(GraphDatabase(thread_safe=True))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    c = Client(server.host, server.port)
    yield c
    c.close()


class TestEndpoints:
    def test_health(self, client):
        status, body = client.get("/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_run_round_trip(self, client):
        status, body = client.post(
            "/run",
            {"query": "CREATE (:Person {name: $n, age: 30})", "parameters": {"n": "Ada"}},
        )
        assert status == 200
        assert body["summary"]["counters"]["nodes_created"] == 1
        assert body["summary"]["contains_updates"]

        status, body = client.post(
            "/run", {"query": "MATCH (p:Person) RETURN p.name AS name, p.age AS age"}
        )
        assert status == 200
        assert body["columns"] == ["name", "age"]
        assert body["rows"] == [{"name": "Ada", "age": 30}]
        assert not body["summary"]["contains_updates"]

    def test_run_returns_wire_encoded_entities(self, client):
        client.post("/run", {"query": "CREATE (:A {x: 1})-[:Knows {w: 2}]->(:B)"})
        status, body = client.post(
            "/run", {"query": "MATCH (a:A)-[r:Knows]->(b:B) RETURN a, r"}
        )
        assert status == 200
        (row,) = body["rows"]
        assert row["a"]["$type"] == "node"
        assert row["a"]["labels"] == ["A"]
        assert row["a"]["properties"] == {"x": 1}
        assert row["r"]["$type"] == "relationship"
        assert row["r"]["type"] == "Knows"
        assert row["r"]["start"] == row["a"]["id"]

    def test_graphs_catalog_and_isolation(self, client):
        client.post("/run", {"graph": "g1", "query": "CREATE (:OnlyInG1)"})
        client.post("/run", {"graph": "g2", "query": "CREATE (:OnlyInG2)"})
        status, body = client.get("/graphs")
        assert status == 200
        assert {"g1", "g2"} <= set(body["graphs"])
        status, body = client.post(
            "/run", {"graph": "g2", "query": "MATCH (n:OnlyInG1) RETURN n"}
        )
        assert body["rows"] == []

    def test_explain(self, client):
        client.post("/run", {"query": "CREATE (:Person {name: 'Ada'})"})
        status, body = client.post(
            "/explain", {"query": "MATCH (p:Person) RETURN p.name AS name"}
        )
        assert status == 200
        assert "Person" in body["plan"]

    def test_trigger_lifecycle(self, client):
        trigger = """
            CREATE TRIGGER AuditPeople
            AFTER CREATE ON 'Person'
            FOR EACH NODE
            BEGIN
              CREATE (:Audit {name: NEW.name})
            END
        """
        status, body = client.post("/trigger", {"action": "install", "trigger": trigger})
        assert status == 200
        assert body["installed"] == "AuditPeople"

        client.post("/run", {"query": "CREATE (:Person {name: 'Ada'})"})
        status, body = client.post("/run", {"query": "MATCH (a:Audit) RETURN a.name AS n"})
        assert body["rows"] == [{"n": "Ada"}]

        status, body = client.post("/trigger", {"action": "stop", "name": "AuditPeople"})
        assert status == 200
        client.post("/run", {"query": "CREATE (:Person {name: 'Bob'})"})
        status, body = client.post("/run", {"query": "MATCH (a:Audit) RETURN count(*) AS c"})
        assert body["rows"] == [{"c": 1}]

        status, body = client.post("/trigger", {"action": "start", "name": "AuditPeople"})
        assert status == 200
        status, body = client.post("/trigger", {"action": "drop", "name": "AuditPeople"})
        assert status == 200
        assert body["dropped"] == "AuditPeople"

    def test_error_paths(self, client):
        assert client.get("/nope")[0] == 404
        assert client.get("/run")[0] == 405
        assert client.post("/run", {"query": "NOT CYPHER AT ALL"})[0] == 400
        assert client.post("/run", {"no_query": True})[0] == 400
        assert client.post("/trigger", {"action": "explode", "name": "x"})[0] == 400
        assert client.post("/trigger", {"action": "drop", "name": "missing"})[0] == 400
        status, body = client.request("POST", "/run")  # no body at all
        assert status == 400

    def test_malformed_json_body(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("POST", "/run", body=b"{not json", headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        conn.close()


class TestServerBehaviour:
    def test_requires_thread_safe_database(self):
        with pytest.raises(ValueError, match="thread-safe"):
            DatabaseServer(GraphDatabase())

    def test_fifty_concurrent_clients(self, server):
        """The CI smoke bar: 50 concurrent clients, every request answered."""
        clients = 50
        requests_each = 4
        start = threading.Barrier(clients, timeout=30)
        failures: list[str] = []

        def worker(index: int) -> None:
            client = Client(server.host, server.port)
            try:
                start.wait()
                for round_number in range(requests_each):
                    status, _ = client.post(
                        "/run",
                        {"query": "CREATE (:Hit {client: $c, round: $r})",
                         "parameters": {"c": index, "r": round_number}},
                    )
                    if status != 200:
                        failures.append(f"client {index} write got {status}")
                    status, body = client.post(
                        "/run", {"query": "MATCH (h:Hit) RETURN count(*) AS c"}
                    )
                    if status != 200:
                        failures.append(f"client {index} read got {status}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"client {index}: {type(exc).__name__}: {exc}")
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
            assert not thread.is_alive(), "client thread hung"
        assert failures == []

        check = Client(server.host, server.port)
        status, body = check.post("/run", {"query": "MATCH (h:Hit) RETURN count(*) AS c"})
        check.close()
        assert status == 200
        assert body["rows"] == [{"c": clients * requests_each}]

    def test_connection_limit_returns_503(self):
        handle = run_in_thread(GraphDatabase(thread_safe=True), max_connections=0)
        try:
            conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
            conn.request("GET", "/health")
            response = conn.getresponse()
            assert response.status == 503
            conn.close()
        finally:
            handle.stop()

    def test_graceful_shutdown_flushes_group_commit(self, tmp_path):
        """Writes acked before shutdown survive a restart even when the WAL
        group-commit buffer was still holding them."""
        io = MemoryIO()
        database = GraphDatabase(
            path=str(tmp_path), storage_io=io, group_commit_size=1000, thread_safe=True
        )
        handle = run_in_thread(database)
        client = Client(handle.host, handle.port)
        for index in range(5):
            status, _ = client.post(
                "/run", {"query": "CREATE (:Durable {seq: $s})", "parameters": {"s": index}}
            )
            assert status == 200
        client.close()
        handle.stop()  # graceful: flushes the group-commit buffer

        reopened = GraphDatabase(path=str(tmp_path), storage_io=io, thread_safe=True)
        result = reopened.graph("default").run(
            "MATCH (d:Durable) RETURN count(*) AS c"
        )
        assert result.single() == 5
        reopened.close()

    def test_stop_is_idempotent_and_clean(self, server):
        client = Client(server.host, server.port)
        status, _ = client.get("/health")
        assert status == 200
        client.close()
        server.stop()
        server.stop()  # second stop is a no-op
