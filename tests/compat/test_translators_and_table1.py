"""Tests for the APOC/Memgraph translators (Figures 2-3) and Table 1."""

import pytest

from repro.compat import (
    ApocEmulator,
    MemgraphEmulator,
    TranslationError,
    render_table1,
    systems_with_event_listeners,
    systems_with_graph_triggers,
    table1_rows,
    translate_to_apoc,
    translate_to_memgraph,
)
from repro.triggers import parse_trigger

NEW_CRITICAL_MUTATION = """
CREATE TRIGGER NewCriticalMutation
AFTER CREATE ON 'Mutation'
FOR EACH NODE
WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
BEGIN
CREATE (:Alert{desc:'New critical mutation', mutation:NEW.name})
END
"""

WHO_DESIGNATION_CHANGE = """
CREATE TRIGGER WhoDesignationChange
AFTER SET ON 'Lineage'.'whoDesignation'
FOR EACH NODE
WHEN OLD.whoDesignation <> NEW.whoDesignation
BEGIN
CREATE (:Alert{desc:'New Designation for an existing Lineage'})
END
"""

ICU_THRESHOLD = """
CREATE TRIGGER IcuPatientsOverThreshold
AFTER CREATE ON 'IcuPatient'
FOR ALL NODES
WHEN
MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital{name:'Sacco'})
WITH COUNT(DISTINCT p) AS icuPat
WHERE icuPat > 2
BEGIN
MERGE (:Alert{desc:'ICU patients at Sacco Hospital are more than 2'})
END
"""

DELETE_TRIGGER = """
CREATE TRIGGER PatientDischarged
AFTER DELETE ON 'IcuPatient'
FOR EACH NODE
BEGIN
CREATE (:Alert {desc: 'discharge', ssn: OLD.ssn})
END
"""

REL_TRIGGER = """
CREATE TRIGGER NewAssignment
AFTER CREATE ON 'TreatedAt'
FOR EACH RELATIONSHIP
BEGIN
CREATE (:Alert {desc: 'new treatment'})
END
"""


class TestApocTranslationText:
    def test_figure2_structure_for_node_creation(self):
        translation = translate_to_apoc(parse_trigger(NEW_CRITICAL_MUTATION))
        text = translation.call_text
        assert text.startswith("CALL apoc.trigger.install('databaseName', 'NewCriticalMutation'")
        assert "UNWIND $createdNodes AS cNodes" in text
        assert "CALL apoc.do.when(" in text
        assert "cNodes:Mutation" in text
        assert "{phase: 'afterAsync'}" in text
        # the condition and statement now refer to the unwound variable
        assert "EXISTS (cNodes)-[:Risk]-(:CriticalEffect)" in translation.do_when_condition
        assert "cNodes.name" in translation.inner_statement

    def test_event_parameter_mapping(self):
        assert translate_to_apoc(parse_trigger(NEW_CRITICAL_MUTATION)).parameter == "createdNodes"
        assert translate_to_apoc(parse_trigger(DELETE_TRIGGER)).parameter == "deletedNodes"
        assert (
            translate_to_apoc(parse_trigger(REL_TRIGGER)).parameter == "createdRelationships"
        )
        assert (
            translate_to_apoc(parse_trigger(WHO_DESIGNATION_CHANGE)).parameter
            == "assignedNodeProperties"
        )

    def test_property_trigger_uses_old_new_values(self):
        translation = translate_to_apoc(parse_trigger(WHO_DESIGNATION_CHANGE))
        assert "oldValue <> newValue" in translation.do_when_condition
        assert "changedKey = 'whoDesignation'" in translation.do_when_condition
        assert "UNWIND keys($assignedNodeProperties)" in translation.unwind_clause

    def test_oncommit_maps_to_before_phase(self):
        trigger = parse_trigger(
            "CREATE TRIGGER C ONCOMMIT CREATE ON 'Patient' FOR EACH NODE BEGIN CREATE (:X) END"
        )
        assert translate_to_apoc(trigger).phase == "before"

    def test_before_not_translatable(self):
        trigger = parse_trigger(
            "CREATE TRIGGER B BEFORE CREATE ON 'Patient' FOR EACH NODE "
            "BEGIN MATCH (p:NEW) SET p.x = 1 END"
        )
        with pytest.raises(TranslationError):
            translate_to_apoc(trigger)

    def test_condition_query_emitted_before_do_when(self):
        translation = translate_to_apoc(parse_trigger(ICU_THRESHOLD))
        assert translation.condition_query.startswith("MATCH")
        assert "cNodes" in translation.condition_query  # carried through the WITH
        body_index = translation.call_text.index("CALL apoc.do.when")
        assert translation.call_text.index("MATCH (p:IcuPatient)") < body_index


class TestApocTranslationExecution:
    """The translated install calls are executable on the APOC emulator."""

    def seed(self, emulator):
        emulator.run("CREATE (:CriticalEffect {description: 'Enhanced infectivity'})")

    def test_node_creation_trigger_round_trip(self):
        emulator = ApocEmulator()
        self.seed(emulator)
        translation = translate_to_apoc(parse_trigger(NEW_CRITICAL_MUTATION))
        emulator.run(translation.call_text)
        assert [t.name for t in emulator.list_triggers()] == ["NewCriticalMutation"]
        # a mutation with a Risk edge to a critical effect raises an alert …
        emulator.run(
            "MATCH (c:CriticalEffect) CREATE (:Mutation {name: 'Spike:D614G'})-[:Risk]->(c)"
        )
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties["mutation"] == "Spike:D614G"
        # … while a harmless mutation does not
        emulator.run("CREATE (:Mutation {name: 'ORF1a:T265I'})")
        assert emulator.graph.count_nodes_with_label("Alert") == 1

    def test_property_change_trigger_round_trip(self):
        emulator = ApocEmulator()
        translation = translate_to_apoc(parse_trigger(WHO_DESIGNATION_CHANGE))
        emulator.run(translation.call_text)
        emulator.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        emulator.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        assert emulator.graph.count_nodes_with_label("Alert") == 1
        # setting an unrelated property does not fire
        emulator.run("MATCH (l:Lineage) SET l.name = 'renamed'")
        assert emulator.graph.count_nodes_with_label("Alert") == 1

    def test_set_granularity_threshold_round_trip(self):
        emulator = ApocEmulator()
        translation = translate_to_apoc(parse_trigger(ICU_THRESHOLD))
        emulator.run(translation.call_text)
        emulator.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 10})")
        for i in range(3):
            emulator.run(
                "MATCH (h:Hospital {name: 'Sacco'}) "
                f"CREATE (:IcuPatient {{ssn: 'P{i}'}})-[:TreatedAt]->(h)"
            )
        # threshold is 2: the third admission pushes the count to 3 (MERGE
        # collapses duplicate alerts, as in the paper's translation advice)
        assert emulator.graph.count_nodes_with_label("Alert") == 1


class TestMemgraphTranslation:
    def test_figure3_structure(self):
        translation = translate_to_memgraph(parse_trigger(NEW_CRITICAL_MUTATION))
        ddl = translation.ddl
        assert ddl.startswith("CREATE TRIGGER NewCriticalMutation")
        assert "ON () CREATE" in ddl
        assert "AFTER COMMIT" in ddl
        assert "UNWIND createdVertices AS newNode" in ddl
        assert "WITH CASE WHEN 'Mutation' IN labels(newNode)" in ddl
        assert "WHERE flag IS NOT NULL" in ddl

    def test_phase_mapping(self):
        oncommit = parse_trigger(
            "CREATE TRIGGER C ONCOMMIT CREATE ON 'Patient' FOR EACH NODE BEGIN CREATE (:X) END"
        )
        assert translate_to_memgraph(oncommit).phase == "BEFORE COMMIT"
        detached = parse_trigger(
            "CREATE TRIGGER D DETACHED CREATE ON 'Patient' FOR EACH NODE BEGIN CREATE (:X) END"
        )
        assert translate_to_memgraph(detached).phase == "AFTER COMMIT"

    def test_before_not_translatable(self):
        trigger = parse_trigger(
            "CREATE TRIGGER B BEFORE CREATE ON 'Patient' FOR EACH NODE "
            "BEGIN MATCH (p:NEW) SET p.x = 1 END"
        )
        with pytest.raises(TranslationError):
            translate_to_memgraph(trigger)

    def test_relationship_trigger_uses_edge_source(self):
        translation = translate_to_memgraph(parse_trigger(REL_TRIGGER))
        assert translation.source_variable == "createdEdges"
        assert "ON --> CREATE" in translation.ddl
        assert "type(newNode) = 'TreatedAt'" in translation.ddl

    def test_node_creation_trigger_round_trip(self):
        emulator = MemgraphEmulator()
        emulator.run("CREATE (:CriticalEffect {description: 'Enhanced infectivity'})")
        translation = translate_to_memgraph(parse_trigger(NEW_CRITICAL_MUTATION))
        emulator.run(translation.ddl)
        emulator.run(
            "MATCH (c:CriticalEffect) CREATE (:Mutation {name: 'Spike:D614G'})-[:Risk]->(c)"
        )
        emulator.run("CREATE (:Mutation {name: 'ORF1a:T265I'})")
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties["mutation"] == "Spike:D614G"

    def test_property_change_trigger_round_trip(self):
        emulator = MemgraphEmulator()
        translation = translate_to_memgraph(parse_trigger(WHO_DESIGNATION_CHANGE))
        emulator.run(translation.ddl)
        emulator.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        emulator.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        assert emulator.graph.count_nodes_with_label("Alert") == 1


class TestTable1:
    def test_fifteen_systems(self):
        assert len(table1_rows()) == 15

    def test_graph_trigger_support(self):
        assert systems_with_graph_triggers() == ["Neo4j", "Memgraph"]

    def test_event_listener_systems(self):
        listeners = systems_with_event_listeners()
        for expected in ("JanusGraph", "Dgraph", "Amazon Neptune", "Stardog",
                         "Microsoft Azure Cosmos DB", "OrientDB", "ArangoDB"):
            assert expected in listeners

    def test_relational_trigger_systems(self):
        rows = {row["System"]: row for row in table1_rows()}
        for system in ("Oracle Graph Database", "Virtuoso", "AgensGraph"):
            assert rows[system]["Tr-R"] == "✓"
            assert rows[system]["Tr-G"] == "-"

    def test_no_support_systems(self):
        rows = {row["System"]: row for row in table1_rows()}
        for system in ("Nebula Graph", "TigerGraph", "GraphDB"):
            assert rows[system] == {"System": system, "Tr-G": "-", "Tr-R": "-", "Ev-L": "-"}

    def test_render_table(self):
        text = render_table1()
        assert "Neo4j" in text and "Tr-G" in text
        assert len(text.splitlines()) == 17  # header + separator + 15 systems
