"""Tests for the APOC trigger emulation (Section 5.1, Table 2)."""

import datetime

import pytest

from repro.compat import ApocEmulator, ApocTriggerError, TABLE2_ROWS, transition_parameters
from repro.graph import GraphDelta, PropertyGraph
from repro.tx import Transaction

CLOCK = lambda: datetime.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731


@pytest.fixture
def emulator():
    return ApocEmulator(clock=CLOCK)


class TestTriggerManagement:
    def test_install_and_list(self, emulator):
        emulator.install("neo4j", "T1", "RETURN 1", {"phase": "afterAsync"})
        emulator.install("neo4j", "T2", "RETURN 2", {"phase": "before"})
        rows = [t.as_row() for t in emulator.list_triggers()]
        assert [r["name"] for r in rows] == ["T1", "T2"]
        assert rows[0]["selector"] == {"phase": "afterAsync"}

    def test_invalid_phase_rejected(self, emulator):
        with pytest.raises(ApocTriggerError):
            emulator.install("neo4j", "T", "RETURN 1", {"phase": "sometime"})

    def test_drop_and_drop_all(self, emulator):
        emulator.install("neo4j", "T1", "RETURN 1")
        emulator.install("neo4j", "T2", "RETURN 1")
        emulator.drop("neo4j", "T1")
        assert [t.name for t in emulator.list_triggers()] == ["T2"]
        assert emulator.drop_all() == 1

    def test_drop_unknown(self, emulator):
        with pytest.raises(ApocTriggerError):
            emulator.drop("neo4j", "missing")

    def test_stop_start(self, emulator):
        emulator.install("neo4j", "T", "CREATE (:Alert)", {"phase": "afterAsync"})
        emulator.stop("neo4j", "T")
        emulator.run("CREATE (:Patient {ssn: 'P1'})")
        assert emulator.graph.count_nodes_with_label("Alert") == 0
        emulator.start("neo4j", "T")
        emulator.run("CREATE (:Patient {ssn: 'P2'})")
        assert emulator.graph.count_nodes_with_label("Alert") == 1

    def test_management_via_call_procedures(self, emulator):
        emulator.run(
            "CALL apoc.trigger.install('neo4j', 'FromCall', 'CREATE (:Alert)', "
            "{phase: 'afterAsync'})"
        )
        assert [t.name for t in emulator.list_triggers()] == ["FromCall"]
        result = emulator.run("CALL apoc.trigger.list() YIELD name RETURN name")
        assert result.values("name") == ["FromCall"]
        emulator.run("CALL apoc.trigger.drop('neo4j', 'FromCall')")
        assert emulator.list_triggers() == []


class TestTriggerExecution:
    def test_after_async_trigger_fires_on_created_nodes(self, emulator):
        emulator.install(
            "neo4j",
            "OnMutation",
            "UNWIND $createdNodes AS cNodes "
            "CALL apoc.do.when(cNodes:Mutation, "
            "'CREATE (:Alert {mutation: $cNodes.name})', '', {cNodes: cNodes}) "
            "YIELD value RETURN *",
            {"phase": "afterAsync"},
        )
        emulator.run("CREATE (:Mutation {name: 'Spike:D614G'})")
        emulator.run("CREATE (:Sequence {accession: 'S1'})")  # not a mutation
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties["mutation"] == "Spike:D614G"
        assert emulator.execution_log.count(("OnMutation", "afterAsync")) >= 1

    def test_before_phase_runs_in_same_transaction_alphabetically(self, emulator):
        emulator.install("neo4j", "Zeta", "CREATE (:Log {name: 'Zeta'})", {"phase": "before"})
        emulator.install("neo4j", "Alpha", "CREATE (:Log {name: 'Alpha'})", {"phase": "before"})
        emulator.run("CREATE (:Patient {ssn: 'P1'})")
        # both fired exactly once, in alphabetical order (the APOC limitation)
        assert emulator.execution_log == [("Alpha", "before"), ("Zeta", "before")]
        assert emulator.graph.count_nodes_with_label("Log") == 2

    def test_triggers_do_not_cascade(self, emulator):
        # A trigger creating Alert nodes is never re-activated by the Alert
        # nodes created by another trigger (or itself).
        emulator.install(
            "neo4j",
            "OnAnything",
            "UNWIND $createdNodes AS cNodes "
            "CALL apoc.do.when(cNodes:Alert, 'CREATE (:Escalation)', '', {cNodes: cNodes}) "
            "YIELD value RETURN *",
            {"phase": "afterAsync"},
        )
        emulator.install(
            "neo4j",
            "RaiseAlert",
            "UNWIND $createdNodes AS cNodes "
            "CALL apoc.do.when(cNodes:Mutation, 'CREATE (:Alert)', '', {cNodes: cNodes}) "
            "YIELD value RETURN *",
            {"phase": "afterAsync"},
        )
        emulator.run("CREATE (:Mutation {name: 'X'})")
        assert emulator.graph.count_nodes_with_label("Alert") == 1
        # no cascade: the Alert created by RaiseAlert never reaches OnAnything
        assert emulator.graph.count_nodes_with_label("Escalation") == 0

    def test_do_when_else_branch(self, emulator):
        emulator.install(
            "neo4j",
            "Classify",
            "UNWIND $createdNodes AS cNodes "
            "CALL apoc.do.when(cNodes.vaccinated > 0, "
            "'CREATE (:Vaccinated)', 'CREATE (:Unvaccinated)', {cNodes: cNodes}) "
            "YIELD value RETURN *",
            {"phase": "afterAsync"},
        )
        emulator.run("CREATE (:Patient {vaccinated: 2})")
        emulator.run("CREATE (:Patient {vaccinated: 0})")
        assert emulator.graph.count_nodes_with_label("Vaccinated") == 1
        assert emulator.graph.count_nodes_with_label("Unvaccinated") == 1

    def test_assigned_properties_metadata(self, emulator):
        emulator.install(
            "neo4j",
            "WhoChange",
            "UNWIND keys($assignedNodeProperties) AS k "
            "UNWIND $assignedNodeProperties[k] AS aProp "
            "WITH aProp.node AS node, aProp.key AS key, aProp.old AS old, aProp.new AS new "
            "CALL apoc.do.when(node:Lineage AND key = 'whoDesignation' AND old <> new, "
            "'CREATE (:Alert {before: $old, after: $new})', '', {old: old, new: new}) "
            "YIELD value RETURN *",
            {"phase": "afterAsync"},
        )
        emulator.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        emulator.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties == {"before": "Indian", "after": "Delta"}


class TestTransitionParameters:
    def test_table2_rows_complete(self):
        names = [name for name, _ in TABLE2_ROWS]
        assert len(names) == 10
        assert "assignedNodeProperties" in names

    def test_parameter_shapes(self):
        graph = PropertyGraph()
        tx = Transaction(graph)
        node = tx.create_node(["Lineage"], {"whoDesignation": "Indian"})
        other = tx.create_node(["Sequence"])
        rel = tx.create_relationship("BelongsTo", other.id, node.id)
        tx.set_node_property(node.id, "whoDesignation", "Delta")
        tx.add_label(node.id, "Variant")
        tx.remove_label(node.id, "Variant")
        tx.set_relationship_property(rel.id, "since", 2021)
        tx.remove_relationship_property(rel.id, "since")
        tx.remove_node_property(node.id, "whoDesignation")
        tx.delete_relationship(rel.id)
        tx.delete_node(other.id)
        params = transition_parameters(tx.statement_delta)
        assert {n.id for n in params["createdNodes"]} == {node.id, other.id}
        assert [r.id for r in params["createdRelationships"]] == [rel.id]
        assert [n.id for n in params["deletedNodes"]] == [other.id]
        assert [r.id for r in params["deletedRelationships"]] == [rel.id]
        assert [n.id for n in params["assignedLabels"]["Variant"]] == [node.id]
        assert [n.id for n in params["removedLabels"]["Variant"]] == [node.id]
        who = params["assignedNodeProperties"]["whoDesignation"][0]
        assert who["old"] == "Indian" and who["new"] == "Delta"
        since = params["assignedRelProperties"]["since"][0]
        assert since["relationship"].id == rel.id and since["new"] == 2021
        assert params["removedNodeProperties"]["whoDesignation"][0]["old"] == "Delta"
        assert params["removedRelProperties"]["since"][0]["old"] == 2021

    def test_empty_delta(self):
        params = transition_parameters(GraphDelta())
        assert params["createdNodes"] == []
        assert params["assignedNodeProperties"] == {}
