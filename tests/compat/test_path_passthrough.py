"""Translators must pass path syntax through untranslated.

Variable-length quantifiers (``*``, ``*1..3``), ``shortestPath`` and path
functions are plain Cypher understood by both Neo4j and Memgraph; the
syntax-directed translations of Figures 2-3 only rewrite the trigger
scaffolding (transition variables, granularity, conditions), so any path
syntax inside WHEN conditions or action bodies must survive verbatim.
"""

import pytest

from repro.compat import translate_to_apoc, translate_to_memgraph
from repro.triggers import parse_trigger

PATH_TRIGGER = """
CREATE TRIGGER ExposureCascade
AFTER CREATE ON 'CONTACT'
FOR EACH RELATIONSHIP
WHEN MATCH p = shortestPath((i:Person {status:'infected'})-[:CONTACT*..4]-(n:Person)) WHERE id(n) = NEW.end
BEGIN
MATCH (m:Person)-[:CONTACT*1..2]->(x) SET x.checked = true
END
"""

PATH_FRAGMENTS = [
    "shortestPath((i:Person {status:'infected'})-[:CONTACT*..4]-(n:Person))",
    "-[:CONTACT*1..2]->",
]


@pytest.fixture
def definition():
    return parse_trigger(PATH_TRIGGER)


class TestApocPassthrough:
    def test_path_syntax_survives_verbatim(self, definition):
        statement = str(translate_to_apoc(definition))
        for fragment in PATH_FRAGMENTS:
            assert fragment in statement

    def test_no_quantifier_garbling(self, definition):
        # the '*' of a var-length pattern must not be expanded, escaped or
        # absorbed by the RETURN * the translation appends
        statement = str(translate_to_apoc(definition))
        assert "CONTACT*..4" in statement
        assert "CONTACT*1..2" in statement


class TestMemgraphPassthrough:
    def test_path_syntax_survives_verbatim(self, definition):
        translation = translate_to_memgraph(definition)
        statement = str(translation)
        for fragment in PATH_FRAGMENTS:
            assert fragment in statement

    def test_length_and_nodes_functions_survive(self):
        definition = parse_trigger(
            "CREATE TRIGGER PathStats AFTER CREATE ON 'Person' FOR EACH NODE "
            "BEGIN MATCH p = (a:Person)-[:CONTACT*]->(b) "
            "SET b.exposure = length(p) END"
        )
        statement = str(translate_to_memgraph(definition))
        assert "length(p)" in statement
        assert "-[:CONTACT*]->" in statement
