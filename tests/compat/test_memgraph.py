"""Tests for the Memgraph trigger emulation (Section 5.2, Table 4)."""

import pytest

from repro.compat import MemgraphEmulator, MemgraphTriggerError, TABLE4_ROWS, predefined_variables
from repro.graph import PropertyGraph
from repro.tx import Transaction


@pytest.fixture
def emulator():
    return MemgraphEmulator()


class TestTriggerManagement:
    def test_create_and_show(self, emulator):
        emulator.run(
            "CREATE TRIGGER OnNewNode ON () CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdVertices AS v CREATE (:Log)"
        )
        rows = emulator.show_triggers()
        assert rows[0]["trigger name"] == "OnNewNode"
        assert rows[0]["phase"] == "AFTER COMMIT"
        assert "(vertices)" in rows[0]["event type"]

    def test_show_triggers_statement(self, emulator):
        emulator.run("CREATE TRIGGER T AFTER COMMIT EXECUTE CREATE (:Log)")
        result = emulator.run("SHOW TRIGGERS")
        assert len(result.rows) == 1

    def test_drop_trigger(self, emulator):
        emulator.run("CREATE TRIGGER T AFTER COMMIT EXECUTE CREATE (:Log)")
        emulator.run("DROP TRIGGER T")
        assert emulator.show_triggers() == []

    def test_duplicate_name_rejected(self, emulator):
        emulator.run("CREATE TRIGGER T AFTER COMMIT EXECUTE CREATE (:Log)")
        with pytest.raises(MemgraphTriggerError):
            emulator.run("CREATE TRIGGER T AFTER COMMIT EXECUTE CREATE (:Log)")

    def test_malformed_ddl_rejected(self, emulator):
        with pytest.raises(MemgraphTriggerError):
            emulator.create_trigger("CREATE TRIGGER T WHENEVER EXECUTE CREATE (:Log)")

    def test_drop_unknown_rejected(self, emulator):
        with pytest.raises(MemgraphTriggerError):
            emulator.run("DROP TRIGGER missing")


class TestTriggerExecution:
    def test_after_commit_vertex_create(self, emulator):
        emulator.run(
            "CREATE TRIGGER OnMutation ON () CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdVertices AS newNode "
            "WITH CASE WHEN 'Mutation' IN labels(newNode) THEN newNode END AS flag, "
            "newNode AS newNode WHERE flag IS NOT NULL "
            "CREATE (:Alert {mutation: newNode.name})"
        )
        emulator.run("CREATE (:Mutation {name: 'Spike:D614G'})")
        emulator.run("CREATE (:Sequence {accession: 'S1'})")
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties["mutation"] == "Spike:D614G"

    def test_before_commit_runs_in_same_transaction(self, emulator):
        emulator.run(
            "CREATE TRIGGER Audit ON () CREATE BEFORE COMMIT EXECUTE "
            "UNWIND createdVertices AS v CREATE (:AuditEntry)"
        )
        emulator.run("CREATE (:Patient {ssn: 'P1'})")
        assert emulator.graph.count_nodes_with_label("AuditEntry") == 1
        assert emulator.execution_log == [("Audit", "BEFORE")]
        # both writes ended up committed by the same (first) transaction
        assert emulator.manager.committed_count == 1

    def test_edge_filter(self, emulator):
        emulator.run(
            "CREATE TRIGGER OnEdge ON --> CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdEdges AS e CREATE (:EdgeLog {kind: type(e)})"
        )
        emulator.run("CREATE (:Sequence {accession: 'S1'})")
        assert emulator.graph.count_nodes_with_label("EdgeLog") == 0
        emulator.run(
            "MATCH (s:Sequence) CREATE (s)-[:BelongsTo]->(:Lineage {name: 'B.1.1.7'})"
        )
        logs = emulator.graph.nodes_with_label("EdgeLog")
        assert len(logs) == 1
        assert logs[0].properties["kind"] == "BelongsTo"

    def test_update_event_with_set_vertex_properties(self, emulator):
        emulator.run(
            "CREATE TRIGGER WhoChange ON () UPDATE AFTER COMMIT EXECUTE "
            "UNWIND setVertexProperties AS change "
            "WITH change.vertex AS v, change.key AS key, change.old AS old, change.new AS new "
            "WHERE key = 'whoDesignation' AND old <> new "
            "CREATE (:Alert {before: old, after: new})"
        )
        emulator.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        emulator.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        alerts = emulator.graph.nodes_with_label("Alert")
        assert len(alerts) == 1
        assert alerts[0].properties == {"before": "Indian", "after": "Delta"}

    def test_any_object_trigger(self, emulator):
        emulator.run(
            "CREATE TRIGGER Anything ON CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdObjects AS o CREATE (:Log)"
        )
        emulator.run("CREATE (:A)-[:R]->(:B)")
        # one Log per created object (2 nodes + 1 relationship)
        assert emulator.graph.count_nodes_with_label("Log") == 3

    def test_no_cascading(self, emulator):
        emulator.run(
            "CREATE TRIGGER OnAlert ON () CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdVertices AS v "
            "WITH CASE WHEN 'Alert' IN labels(v) THEN v END AS flag, v AS v "
            "WHERE flag IS NOT NULL CREATE (:Escalation)"
        )
        emulator.run(
            "CREATE TRIGGER RaiseAlert ON () CREATE AFTER COMMIT EXECUTE "
            "UNWIND createdVertices AS v "
            "WITH CASE WHEN 'Mutation' IN labels(v) THEN v END AS flag, v AS v "
            "WHERE flag IS NOT NULL CREATE (:Alert)"
        )
        emulator.run("CREATE (:Mutation {name: 'X'})")
        assert emulator.graph.count_nodes_with_label("Alert") == 1
        assert emulator.graph.count_nodes_with_label("Escalation") == 0


class TestPredefinedVariables:
    def test_table4_rows_complete(self):
        assert len(TABLE4_ROWS) == 15
        assert TABLE4_ROWS[0][0] == "createdVertices"

    def test_variable_shapes(self):
        graph = PropertyGraph()
        tx = Transaction(graph)
        a = tx.create_node(["Lineage"], {"whoDesignation": "Indian"})
        b = tx.create_node(["Sequence"])
        rel = tx.create_relationship("BelongsTo", b.id, a.id)
        tx.set_node_property(a.id, "whoDesignation", "Delta")
        tx.add_label(a.id, "Variant")
        tx.set_relationship_property(rel.id, "since", 2021)
        tx.remove_node_property(a.id, "whoDesignation")
        tx.delete_relationship(rel.id)
        tx.delete_node(b.id)
        variables = predefined_variables(tx.statement_delta)
        assert {n.id for n in variables["createdVertices"]} == {a.id, b.id}
        assert [r.id for r in variables["createdEdges"]] == [rel.id]
        assert [n.id for n in variables["deletedVertices"]] == [b.id]
        assert [r.id for r in variables["deletedEdges"]] == [rel.id]
        assert variables["setVertexLabels"][0]["label"] == "Variant"
        set_props = variables["setVertexProperties"][0]
        assert set_props["old"] == "Indian" and set_props["new"] == "Delta"
        assert variables["setEdgeProperties"][0]["new"] == 2021
        assert variables["removedVertexProperties"][0]["key"] == "whoDesignation"
        assert len(variables["createdObjects"]) == 3
        assert len(variables["deletedObjects"]) == 2
        assert len(variables["updatedObjects"]) == len(variables["updatedVertices"]) + len(
            variables["updatedEdges"]
        )
