"""Tests for the node/relationship snapshot model and value validation."""

import datetime

import pytest

from repro.graph import InvalidPropertyValueError, Node, Relationship, is_node, is_relationship
from repro.graph.model import validate_properties, validate_property_value


class TestValidatePropertyValue:
    def test_accepts_scalars(self):
        for value in (True, 3, 2.5, "text", datetime.date(2021, 5, 1),
                      datetime.datetime(2021, 5, 1, 12, 0)):
            assert validate_property_value(value) == value

    def test_accepts_list_of_scalars(self):
        assert validate_property_value(["a", "b"]) == ["a", "b"]

    def test_normalises_tuple_to_list(self):
        assert validate_property_value((1, 2)) == [1, 2]

    def test_rejects_nested_lists(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value([[1], [2]])

    def test_rejects_dicts(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value({"a": 1})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value(object())


class TestValidateProperties:
    def test_none_map_gives_empty_dict(self):
        assert validate_properties(None) == {}

    def test_none_values_are_dropped(self):
        assert validate_properties({"a": 1, "b": None}) == {"a": 1}

    def test_empty_key_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_properties({"": 1})

    def test_non_string_key_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_properties({3: 1})


class TestNode:
    def test_label_membership(self):
        node = Node(id=1, labels=frozenset({"Patient"}), properties={"name": "Ada"})
        assert node.has_label("Patient")
        assert not node.has_label("Hospital")

    def test_property_access(self):
        node = Node(id=1, labels=frozenset(), properties={"name": "Ada"})
        assert node["name"] == "Ada"
        assert node.get("missing", 7) == 7
        assert "name" in node
        assert "missing" not in node

    def test_with_updates_creates_new_snapshot(self):
        node = Node(id=1, labels=frozenset({"A"}), properties={"x": 1})
        updated = node.with_updates(labels={"A", "B"}, properties={"x": 2})
        assert node.labels == frozenset({"A"})
        assert node.properties["x"] == 1
        assert updated.labels == frozenset({"A", "B"})
        assert updated.properties["x"] == 2

    def test_is_node_predicate(self):
        node = Node(id=1)
        assert is_node(node)
        assert not is_relationship(node)


class TestRelationship:
    def test_labels_view_is_type(self):
        rel = Relationship(id=5, type="TreatedAt", start=1, end=2)
        assert rel.labels == frozenset({"TreatedAt"})
        assert rel.has_label("TreatedAt")
        assert not rel.has_label("Other")

    def test_other_end(self):
        rel = Relationship(id=5, type="T", start=1, end=2)
        assert rel.other_end(1) == 2
        assert rel.other_end(2) == 1
        with pytest.raises(ValueError):
            rel.other_end(3)

    def test_property_access(self):
        rel = Relationship(id=5, type="T", start=1, end=2, properties={"w": 3})
        assert rel["w"] == 3
        assert rel.get("missing") is None
        assert "w" in rel

    def test_is_relationship_predicate(self):
        rel = Relationship(id=5, type="T", start=1, end=2)
        assert is_relationship(rel)
        assert not is_node(rel)

    def test_with_updates(self):
        rel = Relationship(id=5, type="T", start=1, end=2, properties={"w": 3})
        updated = rel.with_updates(properties={"w": 9})
        assert rel.properties["w"] == 3
        assert updated.properties["w"] == 9
        assert updated.type == "T"
