"""Tests for graph change capture (GraphDelta)."""

from repro.graph import GraphDelta, Node, Relationship


def make_node(node_id=1, labels=("A",), **props):
    return Node(id=node_id, labels=frozenset(labels), properties=props)


def make_rel(rel_id=1, rel_type="R", start=1, end=2, **props):
    return Relationship(id=rel_id, type=rel_type, start=start, end=end, properties=props)


class TestRecording:
    def test_empty_delta(self):
        delta = GraphDelta()
        assert delta.is_empty()
        assert delta.summary()["created_nodes"] == 0

    def test_record_node_events(self):
        delta = GraphDelta()
        node = make_node()
        delta.record_node_created(node)
        delta.record_node_deleted(node)
        assert delta.created_node_ids() == {1}
        assert delta.deleted_node_ids() == {1}
        assert not delta.is_empty()

    def test_record_relationship_events(self):
        delta = GraphDelta()
        rel = make_rel(rel_id=7)
        delta.record_relationship_created(rel)
        delta.record_relationship_deleted(rel)
        assert delta.created_relationship_ids() == {7}
        assert delta.deleted_relationship_ids() == {7}

    def test_record_label_events(self):
        delta = GraphDelta()
        node = make_node()
        delta.record_label_assigned(node, "IcuPatient")
        delta.record_label_removed(node, "Recovered")
        assert delta.assigned_labels[0].label == "IcuPatient"
        assert delta.removed_labels[0].label == "Recovered"

    def test_record_property_events_split_by_item_kind(self):
        delta = GraphDelta()
        node = make_node()
        rel = make_rel()
        delta.record_property_assigned(node, "x", None, 1)
        delta.record_property_assigned(rel, "w", 2, 3)
        delta.record_property_removed(node, "y", 5)
        delta.record_property_removed(rel, "z", 6)
        assert len(delta.node_property_assignments()) == 1
        assert len(delta.relationship_property_assignments()) == 1
        assert len(delta.node_property_removals()) == 1
        assert len(delta.relationship_property_removals()) == 1
        assert delta.node_property_assignments()[0].old is None
        assert delta.relationship_property_assignments()[0].new == 3


class TestMerge:
    def test_merge_preserves_order(self):
        first = GraphDelta()
        second = GraphDelta()
        first.record_node_created(make_node(1))
        second.record_node_created(make_node(2))
        merged = first.merge(second)
        assert [n.id for n in merged.created_nodes] == [1, 2]
        # originals untouched
        assert len(first.created_nodes) == 1
        assert len(second.created_nodes) == 1

    def test_merged_static_helper(self):
        deltas = []
        for i in range(3):
            d = GraphDelta()
            d.record_node_created(make_node(i))
            deltas.append(d)
        merged = GraphDelta.merged(deltas)
        assert [n.id for n in merged.created_nodes] == [0, 1, 2]

    def test_merge_does_not_cancel_create_delete(self):
        delta = GraphDelta()
        node = make_node(3)
        delta.record_node_created(node)
        other = GraphDelta()
        other.record_node_deleted(node)
        merged = delta.merge(other)
        assert merged.created_node_ids() == {3}
        assert merged.deleted_node_ids() == {3}

    def test_summary_counts(self):
        delta = GraphDelta()
        delta.record_node_created(make_node())
        delta.record_property_assigned(make_node(), "k", 1, 2)
        summary = delta.summary()
        assert summary["created_nodes"] == 1
        assert summary["assigned_properties"] == 1
        assert summary["deleted_nodes"] == 0
