"""Tests for JSON serialization and the networkx adapter."""

import datetime

import pytest

from repro.graph import (
    PropertyGraph,
    dumps,
    from_networkx,
    graph_from_dict,
    graph_to_dict,
    load,
    loads,
    save,
    to_networkx,
)


@pytest.fixture
def sample_graph():
    graph = PropertyGraph("sample")
    hospital = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 20})
    patient = graph.create_node(
        ["Patient", "HospitalizedPatient"],
        {"ssn": "P1", "admission": datetime.date(2021, 3, 14)},
    )
    graph.create_relationship("TreatedAt", patient.id, hospital.id, {"since": 2021})
    graph.create_property_index("Hospital", "name")
    return graph


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, sample_graph):
        restored = loads(dumps(sample_graph))
        assert restored.node_count() == sample_graph.node_count()
        assert restored.relationship_count() == sample_graph.relationship_count()
        assert restored.property_indexes() == sample_graph.property_indexes()

    def test_round_trip_preserves_values_and_dates(self, sample_graph):
        restored = loads(dumps(sample_graph))
        patients = restored.find_nodes("Patient")
        assert patients[0].properties["admission"] == datetime.date(2021, 3, 14)
        rels = restored.relationships_with_type("TreatedAt")
        assert rels[0].properties["since"] == 2021

    def test_round_trip_preserves_ids(self, sample_graph):
        original_ids = sorted(n.id for n in sample_graph.nodes())
        restored = loads(dumps(sample_graph))
        assert sorted(n.id for n in restored.nodes()) == original_ids

    def test_datetime_round_trip(self):
        graph = PropertyGraph()
        stamp = datetime.datetime(2021, 3, 14, 15, 9, 26)
        graph.create_node(["Alert"], {"time": stamp})
        restored = loads(dumps(graph))
        assert list(restored.nodes())[0].properties["time"] == stamp

    def test_unknown_version_rejected(self, sample_graph):
        payload = graph_to_dict(sample_graph)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        save(sample_graph, path)
        restored = load(path)
        assert restored.node_count() == sample_graph.node_count()


class TestNetworkxAdapter:
    def test_to_networkx_structure(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        assert nx_graph.number_of_nodes() == sample_graph.node_count()
        assert nx_graph.number_of_edges() == sample_graph.relationship_count()
        labels = [data["labels"] for _, data in nx_graph.nodes(data=True)]
        assert ["Hospital"] in labels

    def test_round_trip_through_networkx(self, sample_graph):
        restored = from_networkx(to_networkx(sample_graph), name="back")
        assert restored.node_count() == sample_graph.node_count()
        assert restored.relationship_count() == sample_graph.relationship_count()
        assert len(restored.find_nodes("Hospital", {"name": "Sacco"})) == 1
        assert restored.relationships_with_type("TreatedAt")

    def test_from_networkx_with_string_ids(self):
        networkx = pytest.importorskip("networkx")
        source = networkx.MultiDiGraph()
        source.add_node("a", labels=["City"], name="Milan")
        source.add_node("b", labels="City", name="Rome")
        source.add_edge("a", "b", type="ConnectedTo", distance=570)
        graph = from_networkx(source)
        assert graph.node_count() == 2
        assert graph.count_nodes_with_label("City") == 2
        rels = graph.relationships_with_type("ConnectedTo")
        assert rels[0].properties["distance"] == 570
