"""Tests for JSON serialization and the networkx adapter."""

import datetime

import pytest

from repro.graph import (
    PropertyGraph,
    decode_value,
    dumps,
    encode_value,
    fingerprint,
    from_networkx,
    graph_from_dict,
    graph_to_dict,
    load,
    loads,
    save,
    to_networkx,
)
from repro.graph.errors import InvalidPropertyValueError


@pytest.fixture
def sample_graph():
    graph = PropertyGraph("sample")
    hospital = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 20})
    patient = graph.create_node(
        ["Patient", "HospitalizedPatient"],
        {"ssn": "P1", "admission": datetime.date(2021, 3, 14)},
    )
    graph.create_relationship("TreatedAt", patient.id, hospital.id, {"since": 2021})
    graph.create_property_index("Hospital", "name")
    return graph


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, sample_graph):
        restored = loads(dumps(sample_graph))
        assert restored.node_count() == sample_graph.node_count()
        assert restored.relationship_count() == sample_graph.relationship_count()
        assert restored.property_indexes() == sample_graph.property_indexes()

    def test_round_trip_preserves_values_and_dates(self, sample_graph):
        restored = loads(dumps(sample_graph))
        patients = restored.find_nodes("Patient")
        assert patients[0].properties["admission"] == datetime.date(2021, 3, 14)
        rels = restored.relationships_with_type("TreatedAt")
        assert rels[0].properties["since"] == 2021

    def test_round_trip_preserves_ids(self, sample_graph):
        original_ids = sorted(n.id for n in sample_graph.nodes())
        restored = loads(dumps(sample_graph))
        assert sorted(n.id for n in restored.nodes()) == original_ids

    def test_datetime_round_trip(self):
        graph = PropertyGraph()
        stamp = datetime.datetime(2021, 3, 14, 15, 9, 26)
        graph.create_node(["Alert"], {"time": stamp})
        restored = loads(dumps(graph))
        assert list(restored.nodes())[0].properties["time"] == stamp

    def test_unknown_version_rejected(self, sample_graph):
        payload = graph_to_dict(sample_graph)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        save(sample_graph, path)
        restored = load(path)
        assert restored.node_count() == sample_graph.node_count()


class TestEdgeCaseRoundTrips:
    """Regression coverage for the payloads WAL/snapshot persistence relies on."""

    def test_empty_graph_round_trips(self):
        restored = loads(dumps(PropertyGraph("empty")))
        assert restored.node_count() == 0
        assert restored.relationship_count() == 0
        assert restored.property_indexes() == []
        assert fingerprint(restored) == fingerprint(PropertyGraph("other-name"))

    def test_empty_property_map_round_trips(self):
        graph = PropertyGraph()
        graph.create_node(["Bare"])
        restored = loads(dumps(graph))
        assert list(restored.nodes())[0].properties == {}

    def test_mixed_type_list_round_trips(self):
        graph = PropertyGraph()
        graph.create_node(["Mixed"], {"bag": [1, "two", 3.5, False]})
        restored = loads(dumps(graph))
        assert list(restored.nodes())[0].properties["bag"] == [1, "two", 3.5, False]

    def test_list_of_dates_round_trips(self):
        graph = PropertyGraph()
        dates = [datetime.date(2021, 3, 14), datetime.date(2021, 12, 1)]
        stamps = [datetime.datetime(2021, 3, 14, 12, 0), datetime.datetime(2022, 1, 1, 0, 0)]
        graph.create_node(["Timeline"], {"dates": dates, "stamps": stamps})
        props = list(loads(dumps(graph)).nodes())[0].properties
        assert props["dates"] == dates
        assert props["stamps"] == stamps

    def test_unicode_round_trips(self):
        graph = PropertyGraph()
        graph.create_node(["Città"], {"name": "Ospedale Sacco — 東京 ★"})
        restored = loads(dumps(graph))
        assert restored.count_nodes_with_label("Città") == 1
        assert list(restored.nodes())[0].properties["name"] == "Ospedale Sacco — 東京 ★"

    def test_all_index_kinds_round_trip(self):
        graph = PropertyGraph()
        a = graph.create_node(["A"], {"x": 1})
        b = graph.create_node(["B"])
        graph.create_relationship("R", a.id, b.id, {"w": 2})
        graph.create_property_index("A", "x")
        graph.create_range_index("A", "x")
        graph.create_relationship_property_index("R", "w")
        restored = loads(dumps(graph))
        assert restored.property_indexes() == [("A", "x")]
        assert restored.range_indexes() == [("A", "x")]
        assert restored.relationship_property_indexes() == [("R", "w")]

    def test_nested_collections_are_rejected_by_the_store(self):
        graph = PropertyGraph()
        with pytest.raises(InvalidPropertyValueError):
            graph.create_node(["Bad"], {"nested": [[1, 2], [3]]})
        with pytest.raises(InvalidPropertyValueError):
            graph.create_node(["Bad"], {"map": {"k": "v"}})

    def test_encode_value_rejects_unserializable_types(self):
        with pytest.raises(ValueError, match="unserializable"):
            encode_value({"k": "v"})
        with pytest.raises(ValueError, match="unserializable"):
            encode_value({1, 2})

    def test_decode_value_rejects_unknown_tags(self):
        with pytest.raises(ValueError, match="unknown tagged"):
            decode_value({"$type": "complex", "value": "1+2j"})

    def test_scalar_values_encode_unchanged(self):
        for value in (None, True, 0, -7, 2.5, "plain"):
            assert encode_value(value) == value
            assert decode_value(encode_value(value)) == value

    def test_tuple_encodes_as_list(self):
        assert encode_value((1, 2)) == [1, 2]

    def test_fingerprint_ignores_name_but_not_content(self):
        left = PropertyGraph("left")
        right = PropertyGraph("right")
        for graph in (left, right):
            graph.create_node(["A"], {"x": 1})
        assert fingerprint(left) == fingerprint(right)
        right.create_node(["B"])
        assert fingerprint(left) != fingerprint(right)


class TestNetworkxAdapter:
    def test_to_networkx_structure(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        assert nx_graph.number_of_nodes() == sample_graph.node_count()
        assert nx_graph.number_of_edges() == sample_graph.relationship_count()
        labels = [data["labels"] for _, data in nx_graph.nodes(data=True)]
        assert ["Hospital"] in labels

    def test_round_trip_through_networkx(self, sample_graph):
        restored = from_networkx(to_networkx(sample_graph), name="back")
        assert restored.node_count() == sample_graph.node_count()
        assert restored.relationship_count() == sample_graph.relationship_count()
        assert len(restored.find_nodes("Hospital", {"name": "Sacco"})) == 1
        assert restored.relationships_with_type("TreatedAt")

    def test_from_networkx_with_string_ids(self):
        networkx = pytest.importorskip("networkx")
        source = networkx.MultiDiGraph()
        source.add_node("a", labels=["City"], name="Milan")
        source.add_node("b", labels="City", name="Rome")
        source.add_edge("a", "b", type="ConnectedTo", distance=570)
        graph = from_networkx(source)
        assert graph.node_count() == 2
        assert graph.count_nodes_with_label("City") == 2
        rels = graph.relationships_with_type("ConnectedTo")
        assert rels[0].properties["distance"] == 570
