"""Property-based tests (hypothesis): histogram maintenance under mutation.

The equi-depth histogram behind ``PropertyGraph.range_histogram`` is
maintained incrementally: in-range mutations adjust a bucket count, anything
else marks the histogram stale for a lazy rebuild on the next access.  These
tests pin the invariants that make its estimates trustworthy under arbitrary
interleavings of inserts, updates, deletes, clears and reads:

* every access returns a histogram whose ``total`` counts exactly the
  entries the ordered index holds at that moment (absorbed mutations keep
  counts exact; anything unabsorbed forces a rebuild before the read
  returns);
* a freshly built histogram answers any range within the equi-depth error
  bound — at most the two partially-overlapped edge buckets;
* an incrementally maintained histogram stays within that bound plus one
  per mutation since the build (drift is capped by the rebuild threshold);
* a rebuild bumps the graph's index epoch exactly like index DDL (cached
  plans were costed with the old estimates), and a plain cached read
  never does;
* ``copy()`` detaches histogram state — mutating the clone leaves the
  original's estimates untouched;
* entries spanning more than one type class withdraw the histogram
  entirely (the same condition under which range seeks decline), rather
  than offering an estimate a scan would contradict.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import PropertyGraph

LABEL = "Person"
PROP = "score"

scores = st.integers(min_value=-500, max_value=500)

#: One mutation against the indexed (Person, score) pair.  Indices are
#: taken modulo the live node list, as in tests/test_properties.py.
mutations = st.one_of(
    st.tuples(st.just("insert"), scores),
    st.tuples(st.just("update"), st.integers(0, 40), scores),
    st.tuples(st.just("remove_prop"), st.integers(0, 40)),
    st.tuples(st.just("delete"), st.integers(0, 40)),
    st.tuples(st.just("clear"),),
    st.tuples(st.just("read"), scores, scores),
)


def _apply(graph: PropertyGraph, operation) -> None:
    kind = operation[0]
    node_ids = [node.id for node in graph.nodes_with_label(LABEL)]
    if kind == "insert":
        graph.create_node([LABEL], {PROP: operation[1]})
    elif kind == "update" and node_ids:
        graph.set_node_property(node_ids[operation[1] % len(node_ids)], PROP, operation[2])
    elif kind == "remove_prop" and node_ids:
        graph.remove_node_property(node_ids[operation[1] % len(node_ids)], PROP)
    elif kind == "delete" and node_ids:
        graph.delete_node(node_ids[operation[1] % len(node_ids)], detach=True)
    elif kind == "clear":
        graph.clear()


def _indexed_scores(graph: PropertyGraph) -> list[int]:
    return sorted(
        node.properties[PROP]
        for node in graph.nodes_with_label(LABEL)
        if PROP in node.properties
    )


def _true_count(graph: PropertyGraph, lo: int, hi: int) -> int:
    return sum(1 for value in _indexed_scores(graph) if lo <= value <= hi)


class TestHistogramMaintenance:
    @given(operations=st.lists(mutations, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_total_tracks_index_through_any_interleaving(self, operations):
        """At every read point, the histogram counts exactly the indexed
        entries — incremental counts never silently drift from the index."""
        graph = PropertyGraph()
        graph.create_range_index(LABEL, PROP)
        for operation in operations:
            _apply(graph, operation)
            if operation[0] == "read":
                histogram = graph.range_histogram(LABEL, PROP)
                assert histogram is not None
                assert histogram.total == len(_indexed_scores(graph))
        histogram = graph.range_histogram(LABEL, PROP)
        assert histogram is not None
        assert histogram.total == len(_indexed_scores(graph))

    @given(
        operations=st.lists(mutations, max_size=60),
        ranges=st.lists(st.tuples(scores, scores), min_size=1, max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_estimates_stay_within_equi_depth_bound(self, operations, ranges):
        """Full buckets count exactly, so an estimate can miss the truth by
        at most the two edge buckets — plus one per unrebuilt mutation for
        the incrementally maintained histogram (values absorbed into the
        gaps between frozen bucket boundaries)."""
        graph = PropertyGraph()
        graph.create_range_index(LABEL, PROP)
        for operation in operations:
            _apply(graph, operation)
        maintained = graph.range_histogram(LABEL, PROP)
        # A fresh graph with the same final entries builds from scratch:
        # drift zero, the pure equi-depth bound applies.
        rebuilt_graph = PropertyGraph()
        rebuilt_graph.create_range_index(LABEL, PROP)
        for value in _indexed_scores(graph):
            rebuilt_graph.create_node([LABEL], {PROP: value})
        fresh = rebuilt_graph.range_histogram(LABEL, PROP)
        assert maintained is not None and fresh is not None
        for lo, hi in ranges:
            lo, hi = min(lo, hi), max(lo, hi)
            actual = _true_count(graph, lo, hi)
            fresh_error = abs(fresh.estimate_range(lo, hi) - actual)
            assert fresh_error <= 2 * fresh.bucket_depth() + 1e-9
            maintained_error = abs(maintained.estimate_range(lo, hi) - actual)
            assert maintained_error <= 2 * maintained.bucket_depth() + len(operations) + 1e-9

    @given(operations=st.lists(mutations, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_epoch_bumps_exactly_on_rebuild(self, operations):
        """index_epoch moves iff an access returned a rebuilt histogram, so
        cached plans re-cost exactly when the estimates changed."""
        graph = PropertyGraph()
        graph.create_range_index(LABEL, PROP)
        previous = graph.range_histogram(LABEL, PROP)
        epoch = graph.index_epoch
        for operation in operations:
            _apply(graph, operation)
            if operation[0] != "read":
                continue
            histogram = graph.range_histogram(LABEL, PROP)
            if histogram is previous:
                assert graph.index_epoch == epoch
            else:
                assert graph.index_epoch == epoch + 1
            previous, epoch = histogram, graph.index_epoch
        # A read with no intervening mutations is always a cache hit.
        histogram = graph.range_histogram(LABEL, PROP)
        again = graph.range_histogram(LABEL, PROP)
        assert again is histogram
        assert graph.index_epoch == (epoch if histogram is previous else epoch + 1)

    @given(
        operations=st.lists(mutations, min_size=1, max_size=30),
        clone_operations=st.lists(mutations, min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_copy_detaches_histogram_state(self, operations, clone_operations):
        graph = PropertyGraph()
        graph.create_range_index(LABEL, PROP)
        for operation in operations:
            _apply(graph, operation)
        clone = graph.copy()
        before = _indexed_scores(graph)
        for operation in clone_operations:
            _apply(clone, operation)
        histogram = graph.range_histogram(LABEL, PROP)
        assert _indexed_scores(graph) == before
        assert histogram is not None and histogram.total == len(before)
        clone_histogram = clone.range_histogram(LABEL, PROP)
        assert clone_histogram is not None
        assert clone_histogram.total == len(_indexed_scores(clone))

    def test_mixed_type_classes_withdraw_the_histogram(self):
        """Ints and strings under one pair: range seeks decline (a live scan
        would raise comparing across classes) and so must the histogram."""
        graph = PropertyGraph()
        graph.create_range_index(LABEL, PROP)
        for value in range(20):
            graph.create_node([LABEL], {PROP: value})
        assert graph.range_histogram(LABEL, PROP) is not None
        poisoned = graph.create_node([LABEL], {PROP: "not-a-number"})
        assert graph.range_histogram(LABEL, PROP) is None
        graph.delete_node(poisoned.id)
        histogram = graph.range_histogram(LABEL, PROP)
        assert histogram is not None and histogram.total == 20
