"""Tests for graph statistics and the planner's cardinality estimators.

The estimator tests pin every figure against hand-counted fixtures: the
estimates feed the query planner's cost model, so silent drift here would
silently change join orders.
"""

from repro.cypher.parser import parse_query
from repro.graph import CardinalityEstimator, PropertyGraph, compute_statistics, describe


def build_graph():
    graph = PropertyGraph("stats")
    h1 = graph.create_node(["Hospital"], {"name": "Sacco"})
    h2 = graph.create_node(["Hospital"], {"name": "Meyer"})
    p = graph.create_node(["Patient"], {"ssn": "P1"})
    graph.create_node()  # unlabeled
    graph.create_relationship("TreatedAt", p.id, h1.id)
    graph.create_relationship("ConnectedTo", h1.id, h2.id, {"distance": 280})
    return graph


class TestStatistics:
    def test_counts(self):
        stats = compute_statistics(build_graph())
        assert stats.node_count == 4
        assert stats.relationship_count == 2
        assert stats.labels == {"Hospital": 2, "Patient": 1}
        assert stats.relationship_types == {"ConnectedTo": 1, "TreatedAt": 1}
        assert stats.unlabeled_nodes == 1

    def test_degree_summary(self):
        stats = compute_statistics(build_graph())
        assert stats.max_degree == 2  # Sacco: TreatedAt + ConnectedTo
        assert stats.min_degree == 0  # the unlabeled node
        assert 0 < stats.mean_degree < 2

    def test_property_key_counts(self):
        stats = compute_statistics(build_graph())
        assert stats.node_property_keys == {"name": 2, "ssn": 1}
        assert stats.relationship_property_keys == {"distance": 1}

    def test_empty_graph(self):
        stats = compute_statistics(PropertyGraph())
        assert stats.node_count == 0
        assert stats.mean_degree == 0.0

    def test_as_dict_and_describe(self):
        graph = build_graph()
        payload = compute_statistics(graph).as_dict()
        assert payload["node_count"] == 4
        text = describe(graph)
        assert "4 nodes" in text
        assert "Hospital=2" in text


def estimator_graph() -> PropertyGraph:
    """Hand-counted fixture: 6 Person, 2 City, 4 KNOWS, 2 LivesIn."""
    graph = PropertyGraph("estimates")
    ages = [30, 30, 30, 40, 40, 25]
    people = [
        graph.create_node(["Person"], {"age": age, "seq": index})
        for index, age in enumerate(ages)
    ]
    cities = [graph.create_node(["City"], {"name": name}) for name in ("a", "b")]
    for index in range(4):
        graph.create_relationship("KNOWS", people[index].id, people[index + 1].id)
    graph.create_relationship("LivesIn", people[0].id, cities[0].id)
    graph.create_relationship("LivesIn", people[1].id, cities[1].id)
    return graph


class TestCardinalityEstimator:
    def test_node_and_label_cardinalities(self):
        estimator = CardinalityEstimator(estimator_graph())
        assert estimator.node_cardinality() == 8.0
        assert estimator.label_cardinality(["Person"]) == 6.0
        assert estimator.label_cardinality(["City"]) == 2.0
        # multiple labels: the most selective (smallest) bucket wins
        assert estimator.label_cardinality(["Person", "City"]) == 2.0
        assert estimator.label_cardinality(["Ghost"]) == 0.0
        # no labels at all estimates a full node scan
        assert estimator.label_cardinality([]) == 8.0

    def test_label_fraction(self):
        estimator = CardinalityEstimator(estimator_graph())
        assert estimator.label_fraction(["Person"]) == 6.0 / 8.0
        assert estimator.label_fraction(["City"]) == 2.0 / 8.0

    def test_index_selectivity_is_entries_over_distinct_values(self):
        graph = estimator_graph()
        graph.create_property_index("Person", "age")
        estimator = CardinalityEstimator(graph)
        # ages 30,30,30,40,40,25 -> 6 entries over 3 distinct values
        assert estimator.index_selectivity("Person", "age") == 2.0
        # unique property: one row per probe
        graph.create_property_index("Person", "seq")
        assert estimator.index_selectivity("Person", "seq") == 1.0
        # undeclared index behaves like a point lookup
        assert estimator.index_selectivity("Person", "name") == 1.0

    def test_store_selectivity_surface(self):
        graph = estimator_graph()
        assert graph.property_index_selectivity("Person", "age") is None
        graph.create_property_index("Person", "age")
        assert graph.property_index_selectivity("Person", "age") == 2.0
        graph.create_property_index("City", "population")
        # declared but empty index: probe estimated as a point lookup
        assert graph.property_index_selectivity("City", "population") == 1.0

    def test_selectivity_counters_track_mutations(self):
        graph = estimator_graph()
        graph.create_property_index("Person", "age")
        assert graph.property_index_selectivity("Person", "age") == 2.0
        [person] = [
            n for n in graph.nodes_with_label("Person") if n.properties["age"] == 25
        ]
        # 25 disappears, 30 gains a member: 6 entries over 2 distinct values
        graph.set_node_property(person.id, "age", 30)
        assert graph.property_index_selectivity("Person", "age") == 3.0
        # deleting the node drops its entry: 5 entries over 2 distinct values
        graph.delete_node(person.id, detach=True)
        assert graph.property_index_selectivity("Person", "age") == 2.5
        graph.drop_property_index("Person", "age")
        assert graph.property_index_selectivity("Person", "age") is None

    def test_expansion_factor(self):
        estimator = CardinalityEstimator(estimator_graph())
        # 6 relationships, each traversable from both ends, over 8 nodes
        assert estimator.expansion_factor() == 2.0 * 6 / 8
        assert estimator.expansion_factor(["KNOWS"]) == 2.0 * 4 / 8
        assert estimator.expansion_factor(["LivesIn"]) == 2.0 * 2 / 8
        assert estimator.expansion_factor(["KNOWS", "LivesIn"]) == 2.0 * 6 / 8
        assert estimator.expansion_factor(["Ghost"]) == 0.0

    def test_pattern_cardinality_hand_counted(self):
        estimator = CardinalityEstimator(estimator_graph())
        query = parse_query("MATCH (p:Person)-[:LivesIn]->(c:City) RETURN p")
        [pattern] = query.clauses[0].patterns
        # start 6 Person x LivesIn expansion (0.5) x City fraction (0.25)
        estimate = estimator.pattern_cardinality(6.0, pattern.elements)
        assert estimate == 6.0 * 0.5 * 0.25
        # a single-node pattern keeps its start estimate untouched
        single = parse_query("MATCH (p:Person) RETURN p").clauses[0].patterns[0]
        assert estimator.pattern_cardinality(6.0, single.elements) == 6.0

    def test_variable_length_uses_min_hops(self):
        estimator = CardinalityEstimator(estimator_graph())
        query = parse_query("MATCH (p:Person)-[:KNOWS*2..3]->(q:Person) RETURN p")
        [pattern] = query.clauses[0].patterns
        factor = 2.0 * 4 / 8
        expected = 6.0 * factor ** 2 * (6.0 / 8.0)
        assert estimator.pattern_cardinality(6.0, pattern.elements) == expected

    def test_degrades_on_reduced_graph_likes(self):
        class Bare:
            pass

        estimator = CardinalityEstimator(Bare())
        assert estimator.node_cardinality() == 0.0
        assert estimator.expansion_factor() == 0.0
        assert estimator.index_selectivity("L", "p") == 1.0
        assert estimator.label_fraction(["L"]) == 1.0

    def test_empty_graph_estimates(self):
        estimator = CardinalityEstimator(PropertyGraph())
        assert estimator.node_cardinality() == 0.0
        assert estimator.expansion_factor() == 0.0
        assert estimator.label_cardinality(["X"]) == 0.0
