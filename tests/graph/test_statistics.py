"""Tests for graph statistics."""

from repro.graph import PropertyGraph, compute_statistics, describe


def build_graph():
    graph = PropertyGraph("stats")
    h1 = graph.create_node(["Hospital"], {"name": "Sacco"})
    h2 = graph.create_node(["Hospital"], {"name": "Meyer"})
    p = graph.create_node(["Patient"], {"ssn": "P1"})
    graph.create_node()  # unlabeled
    graph.create_relationship("TreatedAt", p.id, h1.id)
    graph.create_relationship("ConnectedTo", h1.id, h2.id, {"distance": 280})
    return graph


class TestStatistics:
    def test_counts(self):
        stats = compute_statistics(build_graph())
        assert stats.node_count == 4
        assert stats.relationship_count == 2
        assert stats.labels == {"Hospital": 2, "Patient": 1}
        assert stats.relationship_types == {"ConnectedTo": 1, "TreatedAt": 1}
        assert stats.unlabeled_nodes == 1

    def test_degree_summary(self):
        stats = compute_statistics(build_graph())
        assert stats.max_degree == 2  # Sacco: TreatedAt + ConnectedTo
        assert stats.min_degree == 0  # the unlabeled node
        assert 0 < stats.mean_degree < 2

    def test_property_key_counts(self):
        stats = compute_statistics(build_graph())
        assert stats.node_property_keys == {"name": 2, "ssn": 1}
        assert stats.relationship_property_keys == {"distance": 1}

    def test_empty_graph(self):
        stats = compute_statistics(PropertyGraph())
        assert stats.node_count == 0
        assert stats.mean_degree == 0.0

    def test_as_dict_and_describe(self):
        graph = build_graph()
        payload = compute_statistics(graph).as_dict()
        assert payload["node_count"] == 4
        text = describe(graph)
        assert "4 nodes" in text
        assert "Hospital=2" in text
