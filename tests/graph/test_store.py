"""Tests for the in-memory property graph store."""

import pytest

from repro.graph import (
    GraphIntegrityError,
    NodeInUseError,
    NodeNotFoundError,
    PropertyGraph,
    RelationshipNotFoundError,
)


@pytest.fixture
def graph():
    return PropertyGraph("test")


class TestNodeLifecycle:
    def test_create_node_assigns_increasing_ids(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        assert b.id > a.id
        assert graph.node_count() == 2

    def test_create_node_with_labels_and_properties(self, graph):
        node = graph.create_node(["Patient", "IcuPatient"], {"ssn": "X1"})
        assert node.labels == frozenset({"Patient", "IcuPatient"})
        assert node.properties["ssn"] == "X1"
        assert graph.node(node.id) == node

    def test_create_node_with_explicit_id(self, graph):
        node = graph.create_node(node_id=42)
        assert node.id == 42
        later = graph.create_node()
        assert later.id > 42

    def test_create_node_duplicate_id_rejected(self, graph):
        graph.create_node(node_id=3)
        with pytest.raises(GraphIntegrityError):
            graph.create_node(node_id=3)

    def test_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.node(99)

    def test_delete_node(self, graph):
        node = graph.create_node(["A"])
        removed = graph.delete_node(node.id)
        assert removed.id == node.id
        assert not graph.has_node(node.id)
        assert graph.count_nodes_with_label("A") == 0

    def test_delete_node_with_relationships_requires_detach(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        graph.create_relationship("R", a.id, b.id)
        with pytest.raises(NodeInUseError):
            graph.delete_node(a.id)
        graph.delete_node(a.id, detach=True)
        assert graph.relationship_count() == 0


class TestRelationshipLifecycle:
    def test_create_relationship(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        rel = graph.create_relationship("TreatedAt", a.id, b.id, {"since": 2020})
        assert rel.start == a.id and rel.end == b.id
        assert graph.relationship(rel.id).properties["since"] == 2020
        assert graph.count_relationships_with_type("TreatedAt") == 1

    def test_relationship_requires_existing_endpoints(self, graph):
        a = graph.create_node()
        with pytest.raises(NodeNotFoundError):
            graph.create_relationship("R", a.id, 99)

    def test_relationship_requires_type(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        with pytest.raises(GraphIntegrityError):
            graph.create_relationship("", a.id, b.id)

    def test_delete_relationship(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        rel = graph.create_relationship("R", a.id, b.id)
        graph.delete_relationship(rel.id)
        assert not graph.has_relationship(rel.id)
        with pytest.raises(RelationshipNotFoundError):
            graph.relationship(rel.id)
        assert graph.degree(a.id) == 0


class TestLabelsAndProperties:
    def test_add_and_remove_label_updates_index(self, graph):
        node = graph.create_node(["Patient"])
        graph.add_label(node.id, "IcuPatient")
        assert graph.count_nodes_with_label("IcuPatient") == 1
        graph.remove_label(node.id, "IcuPatient")
        assert graph.count_nodes_with_label("IcuPatient") == 0

    def test_add_existing_label_is_noop(self, graph):
        node = graph.create_node(["A"])
        old, new = graph.add_label(node.id, "A")
        assert old is new

    def test_set_and_remove_node_property(self, graph):
        node = graph.create_node(["A"])
        graph.set_node_property(node.id, "x", 1)
        assert graph.node(node.id).properties["x"] == 1
        graph.remove_node_property(node.id, "x")
        assert "x" not in graph.node(node.id).properties

    def test_set_property_none_removes(self, graph):
        node = graph.create_node(["A"], {"x": 1})
        graph.set_node_property(node.id, "x", None)
        assert "x" not in graph.node(node.id).properties

    def test_set_relationship_property(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        rel = graph.create_relationship("R", a.id, b.id)
        graph.set_relationship_property(rel.id, "distance", 12)
        assert graph.relationship(rel.id).properties["distance"] == 12
        graph.remove_relationship_property(rel.id, "distance")
        assert "distance" not in graph.relationship(rel.id).properties

    def test_snapshots_are_immutable_across_updates(self, graph):
        node = graph.create_node(["A"], {"x": 1})
        before = graph.node(node.id)
        graph.set_node_property(node.id, "x", 2)
        assert before.properties["x"] == 1
        assert graph.node(node.id).properties["x"] == 2


class TestTraversal:
    def test_relationships_of_directions(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        out_rel = graph.create_relationship("OUT", a.id, b.id)
        in_rel = graph.create_relationship("IN", b.id, a.id)
        assert {r.id for r in graph.relationships_of(a.id, "out")} == {out_rel.id}
        assert {r.id for r in graph.relationships_of(a.id, "in")} == {in_rel.id}
        assert {r.id for r in graph.relationships_of(a.id, "both")} == {out_rel.id, in_rel.id}

    def test_relationships_of_type_filter(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        graph.create_relationship("X", a.id, b.id)
        keep = graph.create_relationship("Y", a.id, b.id)
        assert [r.id for r in graph.relationships_of(a.id, rel_type="Y")] == [keep.id]

    def test_neighbours_deduplicates(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        graph.create_relationship("R", a.id, b.id)
        graph.create_relationship("R", a.id, b.id)
        assert [n.id for n in graph.neighbours(a.id)] == [b.id]

    def test_degree(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        graph.create_relationship("R", a.id, b.id)
        assert graph.degree(a.id) == 1
        assert graph.degree(a.id, "in") == 0


class TestFindNodes:
    def test_find_by_label(self, graph):
        graph.create_node(["Hospital"], {"name": "Sacco"})
        graph.create_node(["Hospital"], {"name": "Meyer"})
        graph.create_node(["Region"], {"name": "Lombardy"})
        assert len(graph.find_nodes("Hospital")) == 2

    def test_find_by_label_and_properties(self, graph):
        graph.create_node(["Hospital"], {"name": "Sacco"})
        graph.create_node(["Hospital"], {"name": "Meyer"})
        found = graph.find_nodes("Hospital", {"name": "Sacco"})
        assert len(found) == 1
        assert found[0].properties["name"] == "Sacco"

    def test_find_without_label_scans_all(self, graph):
        graph.create_node(["A"], {"k": 1})
        graph.create_node(["B"], {"k": 1})
        assert len(graph.find_nodes(properties={"k": 1})) == 2

    def test_find_uses_property_index(self, graph):
        graph.create_property_index("Hospital", "name")
        graph.create_node(["Hospital"], {"name": "Sacco"})
        graph.create_node(["Hospital"], {"name": "Meyer"})
        found = graph.find_nodes("Hospital", {"name": "Meyer"})
        assert [n.properties["name"] for n in found] == ["Meyer"]

    def test_property_index_backfill_and_maintenance(self, graph):
        node = graph.create_node(["Hospital"], {"name": "Sacco"})
        graph.create_property_index("Hospital", "name")
        assert graph.find_nodes("Hospital", {"name": "Sacco"})[0].id == node.id
        graph.set_node_property(node.id, "name", "Niguarda")
        assert graph.find_nodes("Hospital", {"name": "Sacco"}) == []
        assert graph.find_nodes("Hospital", {"name": "Niguarda"})[0].id == node.id


class TestBulkOperations:
    def test_clear(self, graph):
        graph.create_property_index("A", "x")
        a = graph.create_node(["A"], {"x": 1})
        b = graph.create_node()
        graph.create_relationship("R", a.id, b.id)
        graph.clear()
        assert graph.node_count() == 0
        assert graph.relationship_count() == 0
        assert graph.property_indexes() == [("A", "x")]

    def test_copy_is_independent(self, graph):
        a = graph.create_node(["A"], {"x": 1})
        b = graph.create_node(["B"])
        graph.create_relationship("R", a.id, b.id)
        clone = graph.copy()
        clone.set_node_property(a.id, "x", 99)
        assert graph.node(a.id).properties["x"] == 1
        assert clone.node_count() == graph.node_count()
        assert clone.relationship_count() == graph.relationship_count()
