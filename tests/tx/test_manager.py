"""Tests for the transaction manager: commit/rollback, hooks, abort."""

import pytest

from repro.graph import PropertyGraph
from repro.tx import TransactionAborted, TransactionManager, TransactionStateError


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def manager(graph):
    return TransactionManager(graph)


class TestCommitRollback:
    def test_commit_returns_full_delta(self, manager):
        tx = manager.begin()
        tx.create_node(["A"])
        manager.end_statement(tx)
        tx.create_node(["B"])
        delta = manager.commit(tx)
        assert len(delta.created_nodes) == 2
        assert manager.committed_count == 1

    def test_rollback_undoes_changes(self, manager, graph):
        tx = manager.begin()
        tx.create_node(["A"])
        manager.rollback(tx)
        assert graph.node_count() == 0
        assert manager.rolled_back_count == 1

    def test_commit_twice_rejected(self, manager):
        tx = manager.begin()
        manager.commit(tx)
        with pytest.raises(TransactionStateError):
            manager.commit(tx)

    def test_rollback_after_rollback_is_noop(self, manager):
        tx = manager.begin()
        manager.rollback(tx)
        manager.rollback(tx)  # does not raise
        assert manager.rolled_back_count == 1

    def test_context_manager_commits(self, manager, graph):
        with manager.transaction() as tx:
            tx.create_node(["A"])
        assert graph.node_count() == 1
        assert manager.committed_count == 1

    def test_context_manager_rolls_back_on_error(self, manager, graph):
        with pytest.raises(RuntimeError):
            with manager.transaction() as tx:
                tx.create_node(["A"])
                raise RuntimeError("boom")
        assert graph.node_count() == 0

    def test_transaction_metadata(self, manager):
        tx = manager.begin(metadata={"source": "trigger"})
        assert tx.metadata["source"] == "trigger"


class TestHooks:
    def test_statement_hooks_fire_on_nonempty_delta(self, manager):
        seen = []
        manager.add_statement_hook(lambda tx, delta: seen.append(delta.summary()))
        tx = manager.begin()
        manager.end_statement(tx)  # empty: no hook
        tx.create_node(["A"])
        manager.end_statement(tx)
        assert len(seen) == 1
        assert seen[0]["created_nodes"] == 1

    def test_before_commit_hook_sees_whole_delta_and_may_write(self, manager, graph):
        def hook(tx, delta):
            if delta.created_nodes and not tx.metadata.get("hooked"):
                tx.metadata["hooked"] = True
                tx.create_node(["Alert"])

        manager.add_before_commit_hook(hook)
        tx = manager.begin()
        tx.create_node(["Patient"])
        delta = manager.commit(tx)
        assert graph.count_nodes_with_label("Alert") == 1
        # hook writes are part of the committed delta
        labels = {label for node in delta.created_nodes for label in node.labels}
        assert labels == {"Patient", "Alert"}

    def test_before_commit_hook_can_abort(self, manager, graph):
        def hook(tx, delta):
            raise TransactionAborted("constraint violated")

        manager.add_before_commit_hook(hook)
        tx = manager.begin()
        tx.create_node(["Patient"])
        with pytest.raises(TransactionAborted):
            manager.commit(tx)
        assert graph.node_count() == 0
        assert manager.rolled_back_count == 1

    def test_after_commit_hook_receives_committed_delta(self, manager):
        received = []
        manager.add_after_commit_hook(lambda tx, delta: received.append(delta))
        tx = manager.begin()
        tx.create_node(["Patient"])
        manager.commit(tx)
        assert len(received) == 1
        assert len(received[0].created_nodes) == 1

    def test_remove_hook(self, manager):
        calls = []
        hook = lambda tx, delta: calls.append(1)  # noqa: E731
        manager.add_after_commit_hook(hook)
        manager.remove_hook(hook)
        tx = manager.begin()
        tx.create_node()
        manager.commit(tx)
        assert calls == []
