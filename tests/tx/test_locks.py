"""Unit tests for the per-named-graph read-write locks.

Synchronisation in these tests uses events and barriers only — never
sleeps — so they are deterministic under any scheduler.
"""

from __future__ import annotations

import threading

import pytest

from repro.tx.errors import LockTimeoutError
from repro.tx.locks import LockManager, ReadWriteLock


def run_in_thread(fn, *args):
    """Run ``fn`` in a thread; re-raise its exception on join."""
    box: dict = {}

    def target():
        try:
            box["value"] = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    thread = threading.Thread(target=target)
    thread.start()

    def join(timeout=10.0):
        thread.join(timeout)
        assert not thread.is_alive(), "worker thread hung"
        if "error" in box:
            raise box["error"]
        return box.get("value")

    return join


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock("g")
        inside = threading.Barrier(3, timeout=10)

        def reader():
            with lock.read():
                inside.wait()  # all three readers inside simultaneously

        joins = [run_in_thread(reader) for _ in range(3)]
        for join in joins:
            join()

    def test_writer_excludes_reader(self):
        lock = ReadWriteLock("g")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError) as excinfo:
            run_in_thread(lambda: lock.acquire_read(timeout=0.01))()
        assert excinfo.value.graph == "g"
        assert excinfo.value.mode == "read"
        lock.release_write()
        with lock.read():  # acquirable again once released
            pass

    def test_writer_excludes_writer_across_threads(self):
        lock = ReadWriteLock("g")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError):
            run_in_thread(lambda: lock.acquire_write(timeout=0.01))()
        lock.release_write()

    def test_reader_excludes_writer(self):
        lock = ReadWriteLock("g")
        lock.acquire_read()
        with pytest.raises(LockTimeoutError) as excinfo:
            run_in_thread(lambda: lock.acquire_write(timeout=0.01))()
        assert excinfo.value.mode == "write"
        lock.release_read()

    def test_write_is_reentrant_per_thread(self):
        lock = ReadWriteLock("g")
        with lock.write():
            with lock.write():
                assert lock.held_by_me()
            assert lock.held_by_me()
        assert not lock.held_by_me()
        # fully released: another thread can take it
        run_in_thread(lambda: lock.acquire_write(timeout=1.0))()

    def test_writer_may_take_read_side(self):
        lock = ReadWriteLock("g")
        with lock.write():
            with lock.read():  # already exclusive; must not self-deadlock
                pass

    def test_read_reentrancy_survives_waiting_writer(self):
        """A reader re-acquiring while a writer queues must not deadlock."""
        lock = ReadWriteLock("g")
        writer_waiting = threading.Event()

        original_wait = lock._wait

        def signalling_wait(predicate, timeout, mode):
            if mode == "write":
                writer_waiting.set()
            return original_wait(predicate, timeout, mode)

        lock._wait = signalling_wait

        def writer():
            with lock.write(timeout=10.0):
                pass

        with lock.read():
            join = run_in_thread(writer)
            assert writer_waiting.wait(10.0)
            # Writer preference blocks *new* readers, but this thread
            # already holds the read side: reentry must be admitted.
            with lock.read(timeout=1.0):
                pass
        join()

    def test_read_to_write_upgrade_refused(self):
        lock = ReadWriteLock("g")
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write(timeout=0.01)

    def test_release_without_hold_raises(self):
        lock = ReadWriteLock("g")
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_timeout_error_carries_context(self):
        lock = ReadWriteLock("covid")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError) as excinfo:
            run_in_thread(lambda: lock.acquire_write(timeout=0.02))()
        err = excinfo.value
        assert err.graph == "covid"
        assert err.mode == "write"
        assert err.timeout == pytest.approx(0.02)
        assert "covid" in str(err)
        lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer goes before fresh readers."""
        lock = ReadWriteLock("g")
        writer_waiting = threading.Event()
        original_wait = lock._wait

        def signalling_wait(predicate, timeout, mode):
            if mode == "write":
                writer_waiting.set()
            return original_wait(predicate, timeout, mode)

        lock._wait = signalling_wait

        def writer():
            lock.acquire_write(timeout=10.0)
            lock.release_write()

        lock.acquire_read()
        writer_join = run_in_thread(writer)
        assert writer_waiting.wait(10.0)
        # A *new* reader (different thread, no prior hold) must now wait.
        with pytest.raises(LockTimeoutError):
            run_in_thread(lambda: lock.acquire_read(timeout=0.01))()
        lock.release_read()
        writer_join()  # writer got in once the reader drained
        with lock.write(timeout=1.0):  # and released cleanly
            pass


class TestLockManager:
    def test_lock_identity_per_name(self):
        manager = LockManager()
        assert manager.lock("a") is manager.lock("a")
        assert manager.lock("a") is not manager.lock("b")

    def test_default_timeout_applies(self):
        manager = LockManager(default_timeout=0.01)
        with manager.write("g"):
            with pytest.raises(LockTimeoutError):
                run_in_thread(lambda: manager.lock("g").acquire_write(0.01))()

    def test_explicit_timeout_overrides_default(self):
        manager = LockManager(default_timeout=30.0)
        with manager.write("g"):
            def contender():
                with manager.write("g", timeout=0.01):
                    pass

            with pytest.raises(LockTimeoutError):
                run_in_thread(contender)()

    def test_write_many_sorts_names(self):
        manager = LockManager()
        order: list[str] = []

        class Spy(ReadWriteLock):
            def acquire_write(self, timeout=None):
                order.append(self.name)
                super().acquire_write(timeout)

        for name in ("b", "a", "c"):
            manager._locks[name] = Spy(name)
        with manager.write_many(["c", "a", "b", "a"]):
            pass
        assert order == ["a", "b", "c"]

    def test_write_many_is_exclusive_and_releases_all(self):
        manager = LockManager()
        with manager.write_many(["x", "y"]):
            for name in ("x", "y"):
                with pytest.raises(LockTimeoutError):
                    run_in_thread(lambda n=name: manager.lock(n).acquire_write(0.01))()
        # all released afterwards
        for name in ("x", "y"):
            run_in_thread(lambda n=name: manager.lock(n).acquire_write(0.5))()

    def test_write_many_timeout_releases_partial_acquisition(self):
        manager = LockManager()
        with manager.write("b"):  # blocks the second name in sorted order
            def contender():
                with manager.write_many(["a", "b"], timeout=0.01):
                    pass

            with pytest.raises(LockTimeoutError):
                run_in_thread(contender)()
        # "a" must not be left locked by the failed attempt
        run_in_thread(lambda: manager.lock("a").acquire_write(0.5))()

    def test_opposed_orders_cannot_deadlock(self):
        """Two writers asking for {a,b} in opposite textual order both finish."""
        manager = LockManager()
        start = threading.Barrier(2, timeout=10)

        def worker(names):
            start.wait()
            for _ in range(50):
                with manager.write_many(names, timeout=10.0):
                    pass

        joins = [
            run_in_thread(worker, ["a", "b"]),
            run_in_thread(worker, ["b", "a"]),
        ]
        for join in joins:
            join()
