"""Tests for transactions: write capture, undo log, statement boundaries."""

import pytest

from repro.graph import PropertyGraph
from repro.tx import Transaction, TransactionState, TransactionStateError


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def tx(graph):
    return Transaction(graph)


class TestWritesAndDelta:
    def test_create_node_recorded(self, tx):
        node = tx.create_node(["Alert"], {"desc": "x"})
        assert tx.graph.has_node(node.id)
        assert tx.statement_delta.created_node_ids() == {node.id}

    def test_create_relationship_recorded(self, tx):
        a = tx.create_node()
        b = tx.create_node()
        rel = tx.create_relationship("R", a.id, b.id)
        assert tx.statement_delta.created_relationship_ids() == {rel.id}

    def test_delete_node_detach_records_relationship_deletions(self, tx):
        a = tx.create_node()
        b = tx.create_node()
        rel = tx.create_relationship("R", a.id, b.id)
        tx.delete_node(a.id, detach=True)
        delta = tx.statement_delta
        assert rel.id in delta.deleted_relationship_ids()
        assert a.id in delta.deleted_node_ids()

    def test_label_changes_recorded(self, tx):
        node = tx.create_node(["Patient"])
        tx.add_label(node.id, "IcuPatient")
        tx.remove_label(node.id, "Patient")
        delta = tx.statement_delta
        assert delta.assigned_labels[0].label == "IcuPatient"
        assert delta.removed_labels[0].label == "Patient"

    def test_label_noop_not_recorded(self, tx):
        node = tx.create_node(["Patient"])
        tx.add_label(node.id, "Patient")
        assert not tx.statement_delta.assigned_labels

    def test_property_changes_recorded_with_old_and_new(self, tx):
        node = tx.create_node(["Lineage"], {"whoDesignation": "Indian"})
        tx.set_node_property(node.id, "whoDesignation", "Delta")
        assignment = tx.statement_delta.assigned_properties[0]
        assert assignment.old == "Indian"
        assert assignment.new == "Delta"

    def test_property_removal_recorded(self, tx):
        node = tx.create_node(["A"], {"x": 1})
        tx.remove_node_property(node.id, "x")
        removal = tx.statement_delta.removed_properties[0]
        assert removal.key == "x" and removal.old == 1

    def test_set_property_none_is_removal(self, tx):
        node = tx.create_node(["A"], {"x": 1})
        tx.set_node_property(node.id, "x", None)
        assert tx.statement_delta.removed_properties
        assert not tx.statement_delta.assigned_properties

    def test_relationship_property_changes(self, tx):
        a = tx.create_node()
        b = tx.create_node()
        rel = tx.create_relationship("R", a.id, b.id, {"w": 1})
        tx.set_relationship_property(rel.id, "w", 2)
        tx.remove_relationship_property(rel.id, "w")
        delta = tx.statement_delta
        assert delta.relationship_property_assignments()[0].new == 2
        assert delta.relationship_property_removals()[0].key == "w"


class TestStatementBoundaries:
    def test_end_statement_resets_statement_delta(self, tx):
        tx.create_node(["A"])
        first = tx.end_statement()
        assert len(first.created_nodes) == 1
        assert tx.statement_delta.is_empty()
        tx.create_node(["B"])
        assert len(tx.statement_delta.created_nodes) == 1

    def test_transaction_delta_accumulates(self, tx):
        tx.create_node(["A"])
        tx.end_statement()
        tx.create_node(["B"])
        assert len(tx.transaction_delta.created_nodes) == 2


class TestRollbackAndState:
    def test_rollback_restores_prior_state(self, graph):
        baseline = graph.create_node(["Hospital"], {"name": "Sacco", "icuBeds": 10})
        tx = Transaction(graph)
        created = tx.create_node(["Patient"])
        tx.create_relationship("TreatedAt", created.id, baseline.id)
        tx.set_node_property(baseline.id, "icuBeds", 5)
        tx.add_label(baseline.id, "Full")
        tx._rollback_changes()
        assert not graph.has_node(created.id)
        assert graph.relationship_count() == 0
        restored = graph.node(baseline.id)
        assert restored.properties["icuBeds"] == 10
        assert restored.labels == frozenset({"Hospital"})

    def test_rollback_restores_deleted_items(self, graph):
        a = graph.create_node(["A"], {"x": 1})
        b = graph.create_node(["B"])
        rel = graph.create_relationship("R", a.id, b.id, {"w": 2})
        tx = Transaction(graph)
        tx.delete_node(a.id, detach=True)
        tx._rollback_changes()
        assert graph.has_node(a.id)
        assert graph.node(a.id).properties["x"] == 1
        assert graph.has_relationship(rel.id)
        assert graph.relationship(rel.id).properties["w"] == 2

    def test_writes_rejected_after_commit(self, tx):
        tx._mark_committed()
        assert tx.state == TransactionState.COMMITTED
        with pytest.raises(TransactionStateError):
            tx.create_node()

    def test_write_count(self, tx):
        tx.create_node()
        tx.create_node()
        assert tx.write_count() == 2
