"""Property-based tests (hypothesis) for core invariants.

Covered invariants:

* the property graph store keeps its label index and adjacency consistent
  under arbitrary operation sequences;
* rolling back a transaction restores exactly the pre-transaction state;
* APOC transition metadata and Memgraph predefined variables always agree
  with the delta they are derived from;
* the Cypher lexer/parser and the trigger grammar round-trip generated
  inputs without losing information;
* streaming and fully-materialised (eager) query execution return
  identical rows, statistics and final graph states over randomised
  read/write query mixes.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.compat import predefined_variables, transition_parameters
from repro.cypher import expression_text, parse_expression
from repro.cypher.executor import QueryExecutor
from repro.graph.model import Node, Relationship
from repro.graph import PropertyGraph, graph_from_dict, graph_to_dict
from repro.triggers import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    TriggerDefinition,
    parse_trigger,
)
from repro.tx import Transaction, TransactionManager

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

labels = st.sampled_from(["Patient", "Hospital", "Mutation", "Sequence", "Alert"])
property_keys = st.sampled_from(["name", "value", "ssn", "icuBeds", "flag"])
scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.text(alphabet=string.ascii_letters, min_size=0, max_size=8),
)

#: One graph operation: (kind, payload…) applied by _apply_operation.
operations = st.one_of(
    st.tuples(st.just("create_node"), st.lists(labels, max_size=2), property_keys, scalar_values),
    st.tuples(st.just("create_rel"), st.integers(0, 30), st.integers(0, 30)),
    st.tuples(st.just("set_prop"), st.integers(0, 30), property_keys, scalar_values),
    st.tuples(st.just("remove_prop"), st.integers(0, 30), property_keys),
    st.tuples(st.just("add_label"), st.integers(0, 30), labels),
    st.tuples(st.just("remove_label"), st.integers(0, 30), labels),
    st.tuples(st.just("delete_node"), st.integers(0, 30)),
    st.tuples(st.just("delete_rel"), st.integers(0, 30)),
)


def _apply_operation(target, operation) -> None:
    """Apply one random operation through a Transaction-like writer."""
    kind = operation[0]
    graph = target.graph
    node_ids = [n.id for n in graph.nodes()]
    rel_ids = [r.id for r in graph.relationships()]
    if kind == "create_node":
        _, node_labels, key, value = operation
        target.create_node(node_labels, {key: value})
    elif kind == "create_rel" and len(node_ids) >= 2:
        _, a, b = operation
        target.create_relationship("Links", node_ids[a % len(node_ids)], node_ids[b % len(node_ids)])
    elif kind == "set_prop" and node_ids:
        _, index, key, value = operation
        target.set_node_property(node_ids[index % len(node_ids)], key, value)
    elif kind == "remove_prop" and node_ids:
        _, index, key = operation
        target.remove_node_property(node_ids[index % len(node_ids)], key)
    elif kind == "add_label" and node_ids:
        _, index, label = operation
        target.add_label(node_ids[index % len(node_ids)], label)
    elif kind == "remove_label" and node_ids:
        _, index, label = operation
        target.remove_label(node_ids[index % len(node_ids)], label)
    elif kind == "delete_node" and node_ids:
        _, index = operation
        target.delete_node(node_ids[index % len(node_ids)], detach=True)
    elif kind == "delete_rel" and rel_ids:
        _, index = operation
        target.delete_relationship(rel_ids[index % len(rel_ids)])


def _graph_snapshot(graph: PropertyGraph):
    return (
        sorted((n.id, tuple(sorted(n.labels)), tuple(sorted(n.properties.items(), key=str)))
               for n in graph.nodes()),
        sorted((r.id, r.type, r.start, r.end, tuple(sorted(r.properties.items(), key=str)))
               for r in graph.relationships()),
    )


# ---------------------------------------------------------------------------
# store invariants
# ---------------------------------------------------------------------------


class TestStoreInvariants:
    @given(st.lists(operations, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_label_index_and_adjacency_consistent(self, ops):
        graph = PropertyGraph()
        tx = Transaction(graph)
        for operation in ops:
            _apply_operation(tx, operation)
        # label index agrees with a full scan
        for label in set(graph.node_labels()):
            indexed = {n.id for n in graph.nodes_with_label(label)}
            scanned = {n.id for n in graph.nodes() if label in n.labels}
            assert indexed == scanned
        # every relationship endpoint exists and degrees add up
        for rel in graph.relationships():
            assert graph.has_node(rel.start) and graph.has_node(rel.end)
        # each non-loop contributes one to the degree of both endpoints; a
        # self-loop contributes one (the store deduplicates its incidence)
        total_degree = sum(graph.degree(n.id) for n in graph.nodes())
        expected = sum(2 if r.start != r.end else 1 for r in graph.relationships())
        assert total_degree == expected

    @given(st.lists(operations, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trip(self, ops):
        graph = PropertyGraph()
        tx = Transaction(graph)
        for operation in ops:
            _apply_operation(tx, operation)
        restored = graph_from_dict(graph_to_dict(graph))
        assert _graph_snapshot(restored) == _graph_snapshot(graph)


class TestTransactionInvariants:
    @given(st.lists(operations, max_size=25), st.lists(operations, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_rollback_restores_exact_state(self, setup_ops, tx_ops):
        graph = PropertyGraph()
        manager = TransactionManager(graph)
        with manager.transaction() as setup:
            for operation in setup_ops:
                _apply_operation(setup, operation)
        before = _graph_snapshot(graph)
        tx = manager.begin()
        for operation in tx_ops:
            _apply_operation(tx, operation)
        manager.rollback(tx)
        assert _graph_snapshot(graph) == before

    @given(st.lists(operations, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_transition_metadata_consistent_with_delta(self, ops):
        graph = PropertyGraph()
        tx = Transaction(graph)
        for operation in ops:
            _apply_operation(tx, operation)
        delta = tx.statement_delta
        apoc = transition_parameters(delta)
        memgraph = predefined_variables(delta)
        assert len(apoc["createdNodes"]) == len(delta.created_nodes)
        assert len(memgraph["createdVertices"]) == len(delta.created_nodes)
        assert len(apoc["deletedRelationships"]) == len(delta.deleted_relationships)
        assert len(memgraph["deletedEdges"]) == len(delta.deleted_relationships)
        assert sum(len(v) for v in apoc["assignedNodeProperties"].values()) == len(
            delta.node_property_assignments()
        )
        assert len(memgraph["setVertexProperties"]) == len(delta.node_property_assignments())
        assert len(memgraph["updatedObjects"]) == (
            len(delta.assigned_labels)
            + len(delta.removed_labels)
            + len(delta.assigned_properties)
            + len(delta.removed_properties)
        )


# ---------------------------------------------------------------------------
# language round trips
# ---------------------------------------------------------------------------

identifier = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def simple_expressions(draw) -> str:
    """Generate small well-formed expressions as text."""
    depth = draw(st.integers(0, 2))

    def atom() -> str:
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return f"'{draw(st.text(alphabet=string.ascii_letters, max_size=6))}'"
        if choice == 2:
            return draw(identifier)
        return f"{draw(identifier)}.{draw(identifier)}"

    def build(level: int) -> str:
        if level <= 0:
            return atom()
        op = draw(st.sampled_from(["+", "-", "*", "=", "<>", "<", "AND", "OR"]))
        return f"({build(level - 1)} {op} {build(level - 1)})"

    return build(depth)


class TestLanguageRoundTrips:
    @given(simple_expressions())
    @settings(max_examples=80, deadline=None)
    def test_expression_parse_render_parse_fixpoint(self, text):
        first = parse_expression(text)
        rendered = expression_text(first)
        second = parse_expression(rendered)
        assert expression_text(second) == rendered

    @given(
        # a "trg_" prefix keeps generated names from colliding (case
        # insensitively) with openCypher keywords such as NULL or MATCH
        name=st.text(alphabet=string.ascii_letters, min_size=1, max_size=10).map(
            lambda s: f"trg_{s}"
        ),
        time=st.sampled_from(list(ActionTime)),
        event=st.sampled_from(list(EventType)),
        label=labels,
        prop=st.one_of(st.none(), property_keys),
        granularity=st.sampled_from(list(Granularity)),
        item=st.sampled_from(list(ItemKind)),
    )
    @settings(max_examples=100, deadline=None)
    def test_trigger_grammar_round_trip(self, name, time, event, label, prop, granularity, item):
        if event in (EventType.CREATE, EventType.DELETE):
            prop = None
        definition = TriggerDefinition(
            name=name,
            time=time,
            event=event,
            label=label,
            property=prop,
            granularity=granularity,
            item=item,
            condition="NEW.value > 0" if event not in (EventType.DELETE, EventType.REMOVE) else None,
            statement="CREATE (:Alert {source: 'generated'})",
        )
        reparsed = parse_trigger(definition.to_pg_trigger())
        assert reparsed.name == name
        assert reparsed.time == time
        assert reparsed.event == event
        assert reparsed.label == label
        assert reparsed.property == prop
        assert reparsed.granularity == granularity
        assert reparsed.item == item


# ---------------------------------------------------------------------------
# streaming vs eager execution equivalence
# ---------------------------------------------------------------------------

#: Query templates mixing reads (streamable, incl. LIMIT/DISTINCT) with
#: writes and blocking projections (pipeline breakers).  ``$v`` is bound
#: per generated statement.
_QUERY_TEMPLATES = [
    "CREATE (:Person {value: $v})",
    "CREATE (:Hospital {value: $v, beds: 3})",
    "MERGE (:Person {value: $v})",
    "UNWIND [$v, $v, 7] AS x CREATE (:Tag {value: x})",
    "MATCH (n:Person) RETURN n.value AS value",
    "MATCH (n:Person) WHERE n.value > $v RETURN n.value AS value LIMIT 3",
    "MATCH (n:Person) RETURN DISTINCT n.value AS value",
    "MATCH (n:Person) RETURN n.value AS value ORDER BY value SKIP 1",
    "MATCH (n) RETURN count(n) AS c",
    "MATCH (n:Person) WITH n.value AS v WHERE v >= $v RETURN v LIMIT 2",
    "MATCH (n:Person) SET n.flag = $v",
    "MATCH (n:Person) REMOVE n.flag",
    "MATCH (n:Person {value: $v}) SET n:Marked",
    "MATCH (n:Tag) WHERE n.value = $v DETACH DELETE n",
    "MATCH (a:Person), (h:Hospital) CREATE (a)-[:TreatedAt {w: $v}]->(h)",
    "MATCH (a:Person)-[r:TreatedAt]->(h:Hospital) RETURN a.value AS a, h.value AS h",
    "MATCH (a:Person)-[r:TreatedAt]->(:Hospital) WHERE r.w = $v DELETE r",
    "MATCH (p:Person) RETURN p",
]

query_mixes = st.lists(
    st.tuples(st.sampled_from(_QUERY_TEMPLATES), st.integers(-5, 15)),
    min_size=1,
    max_size=10,
)


def _canonical_value(value):
    if isinstance(value, Node):
        return ("node", value.id, tuple(sorted(value.labels)),
                tuple(sorted(value.properties.items(), key=str)))
    if isinstance(value, Relationship):
        return ("rel", value.id, value.type, value.start, value.end,
                tuple(sorted(value.properties.items(), key=str)))
    if isinstance(value, list):
        return tuple(_canonical_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical_value(v)) for k, v in value.items()))
    return value


def _canonical_rows(columns, rows):
    return [
        tuple((column, _canonical_value(row.get(column))) for column in columns)
        for row in rows
    ]


class TestStreamingEquivalence:
    @given(query_mixes)
    @settings(max_examples=60, deadline=None)
    def test_streaming_and_eager_execution_agree(self, mix):
        """Same queries, two engines: identical rows, statistics and state."""
        streaming_graph = PropertyGraph()
        eager_graph = PropertyGraph()
        for template, value in mix:
            parameters = {"v": value}
            streaming = QueryExecutor(streaming_graph, parameters=parameters)
            eager = QueryExecutor(eager_graph, parameters=parameters, eager=True)
            s_columns, s_records = streaming.stream(template)
            s_rows = list(s_records)  # lazy pull, row by row
            e_result = eager.execute(template)  # clause-at-a-time lists
            assert s_columns == e_result.columns, template
            assert _canonical_rows(s_columns, s_rows) == _canonical_rows(
                e_result.columns, e_result.rows
            ), template
            assert streaming.last_statistics.as_dict() == (
                eager.last_statistics.as_dict()
            ), template
        assert _graph_snapshot(streaming_graph) == _graph_snapshot(eager_graph)
