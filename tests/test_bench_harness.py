"""Tests for the benchmark harness and the experiment registry / CLI."""

import json

from repro.bench import ALL_EXPERIMENTS, ExperimentResult, run_experiments, timed
from repro.bench.__main__ import main as bench_main


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("X1", "demo experiment")
        result.add_row(system="Neo4j", triggers=True)
        result.add_row(system="TigerGraph", triggers=False, note_field="extra")
        result.note("a free-text note")
        return result

    def test_add_row_extends_columns(self):
        result = self.make()
        assert result.columns == ["system", "triggers", "note_field"]
        assert result.column("system") == ["Neo4j", "TigerGraph"]
        assert result.column("note_field") == [None, "extra"]

    def test_to_text_contains_header_rows_and_notes(self):
        text = self.make().to_text()
        assert text.startswith("== X1: demo experiment ==")
        assert "Neo4j" in text and "TigerGraph" in text
        assert "note: a free-text note" in text

    def test_to_json_round_trip(self):
        payload = json.loads(self.make().to_json())
        assert payload["experiment_id"] == "X1"
        assert len(payload["rows"]) == 2
        assert payload["notes"] == ["a free-text note"]

    def test_timed_records_elapsed(self):
        result = timed(lambda: ExperimentResult("X2", "fast"))
        assert result.elapsed_seconds >= 0
        assert "X2" in result.to_text()

    def test_run_experiments_preserves_order(self):
        results = run_experiments(
            [lambda: ExperimentResult("A", "a"), lambda: ExperimentResult("B", "b")]
        )
        assert [r.experiment_id for r in results] == ["A", "B"]


class TestRegistryAndCli:
    def test_registry_covers_every_design_artifact(self):
        # the per-experiment index of DESIGN.md: tables, figures, sections, perf
        # (P5 is the added planner/plan-cache experiment, P6 the streaming
        # vs eager pipeline comparison, P7 the batched-trigger comparison,
        # P8 the physical-operator comparisons, P9 the durability cost
        # comparison, P10 the concurrent-HTTP throughput experiment,
        # P11 the path-query / reachability-accelerator experiment,
        # P12 the optimizer-torture q-error / plan-regret experiment,
        # P13 the incremental-trigger firehose experiment)
        expected = {"T1", "F1", "F2", "T2", "T3", "F3", "T4", "F45", "S62", "S63",
                    "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10",
                    "P11", "P12", "P13"}
        assert set(ALL_EXPERIMENTS) == expected

    def test_cli_runs_selected_experiments(self, capsys):
        exit_code = bench_main(["T1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 1" in captured.out
        assert "Neo4j" in captured.out

    def test_cli_rejects_unknown_ids(self, capsys):
        exit_code = bench_main(["NOPE"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment id" in captured.err
