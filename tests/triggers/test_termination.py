"""Tests for the triggering-graph termination analysis."""

from repro.triggers import (
    ActionTime,
    EventType,
    ItemKind,
    TriggerDefinition,
    analyse_termination,
    build_triggering_graph,
    statement_events,
)


def trig(name, label, event=EventType.CREATE, statement="CREATE (:Alert)", item=ItemKind.NODE,
         property=None):
    return TriggerDefinition(
        name=name,
        time=ActionTime.AFTER,
        event=event,
        label=label,
        property=property,
        item=item,
        statement=statement,
    )


class TestStatementEvents:
    def test_create_node_labels_detected(self):
        events = statement_events(trig("T", "X", statement="CREATE (:Alert {d: 1})"))
        assert any(e.event == EventType.CREATE and e.label == "Alert" for e in events)

    def test_create_relationship_types_detected(self):
        events = statement_events(
            trig("T", "X", statement="MATCH (a), (b) CREATE (a)-[:TreatedAt]->(b)")
        )
        assert any(
            e.event == EventType.CREATE and e.item == ItemKind.RELATIONSHIP
            and e.label == "TreatedAt"
            for e in events
        )

    def test_delete_is_conservative(self):
        events = statement_events(trig("T", "X", statement="MATCH (a)-[r]->() DELETE r"))
        assert any(e.event == EventType.DELETE and e.label == "*" for e in events)

    def test_set_property_detected(self):
        events = statement_events(trig("T", "X", statement="MATCH (n:Y) SET n.flag = true"))
        assert any(e.event == EventType.SET and e.property == "flag" for e in events)

    def test_set_label_detected(self):
        events = statement_events(trig("T", "X", statement="MATCH (n:Y) SET n:Reviewed"))
        assert any(e.event == EventType.SET and e.label == "Reviewed" for e in events)

    def test_remove_detected(self):
        events = statement_events(trig("T", "X", statement="MATCH (n:Y) REMOVE n.flag"))
        assert any(e.event == EventType.REMOVE and e.property == "flag" for e in events)

    def test_foreach_bodies_analysed(self):
        events = statement_events(
            trig("T", "X", statement="MATCH (n) FOREACH (i IN [1] | CREATE (:Log))")
        )
        assert any(e.label == "Log" for e in events)


class TestTriggeringGraph:
    def test_acyclic_chain(self):
        t1 = trig("RaiseAlert", "Mutation", statement="CREATE (:Alert)")
        t2 = trig("Escalate", "Alert", statement="CREATE (:Escalation)")
        graph = build_triggering_graph([t1, t2])
        assert graph.successors("RaiseAlert") == {"Escalate"}
        assert graph.successors("Escalate") == set()
        assert graph.is_acyclic()

    def test_direct_self_loop(self):
        t = trig("SelfFeeding", "Alert", statement="CREATE (:Alert)")
        graph = build_triggering_graph([t])
        assert graph.self_activating() == ["SelfFeeding"]
        assert not graph.is_acyclic()
        assert graph.cycles() == [["SelfFeeding"]]

    def test_mutual_cycle(self):
        t1 = trig("A", "X", statement="CREATE (:Y)")
        t2 = trig("B", "Y", statement="CREATE (:X)")
        report = analyse_termination([t1, t2])
        assert not report.guaranteed_termination
        assert ("A", "B") in report.cycles or ("B", "A") in report.cycles

    def test_event_types_must_match(self):
        creator = trig("Creator", "X", statement="CREATE (:Y)")
        deleter_watcher = trig("Watcher", "Y", event=EventType.DELETE, statement="CREATE (:Z)")
        graph = build_triggering_graph([creator, deleter_watcher])
        assert graph.successors("Creator") == set()

    def test_item_kind_must_match(self):
        rel_creator = trig(
            "RelCreator", "X", statement="MATCH (a), (b) CREATE (a)-[:Y]->(b)"
        )
        node_watcher = trig("NodeWatcher", "Y", item=ItemKind.NODE)
        graph = build_triggering_graph([rel_creator, node_watcher])
        assert graph.successors("RelCreator") == set()

    def test_property_target_matching(self):
        setter = trig("Setter", "X", statement="MATCH (n:Lineage) SET n.whoDesignation = 'D'")
        watcher = trig(
            "Watcher", "Lineage", event=EventType.SET, property="whoDesignation",
            statement="CREATE (:Alert)",
        )
        other_watcher = trig(
            "Other", "Lineage", event=EventType.SET, property="name", statement="CREATE (:Alert)"
        )
        graph = build_triggering_graph([setter, watcher, other_watcher])
        assert graph.successors("Setter") == {"Watcher"}

    def test_relocation_trigger_reports_possible_non_termination(self):
        # The paper's MoveToNearHospital may cascade indefinitely: it reacts to
        # TreatedAt creations and itself creates TreatedAt relationships.
        move = trig(
            "MoveToNearHospital",
            "TreatedAt",
            item=ItemKind.RELATIONSHIP,
            statement=(
                "MATCH (p)-[c:TreatedAt]-(h) DELETE c CREATE (p)-[:TreatedAt]->(hc)"
            ),
        )
        report = analyse_termination([move])
        assert not report.guaranteed_termination
        assert ("MoveToNearHospital",) in report.cycles
        assert "NOT guaranteed" in str(report)

    def test_paper_suite_without_relocation_terminates(self):
        suite = [
            trig("NewCriticalMutation", "Mutation", statement="CREATE (:Alert)"),
            trig("NewCriticalLineage", "BelongsTo", item=ItemKind.RELATIONSHIP,
                 statement="CREATE (:Alert)"),
            trig("WhoDesignationChange", "Lineage", event=EventType.SET,
                 property="whoDesignation", statement="CREATE (:Alert)"),
            trig("IcuPatientsOverThreshold", "IcuPatient", statement="CREATE (:Alert)"),
        ]
        report = analyse_termination(suite)
        assert report.guaranteed_termination
        assert "guaranteed" in str(report)

    def test_unparseable_statement_treated_conservatively(self):
        broken = TriggerDefinition(
            name="Broken",
            time=ActionTime.AFTER,
            event=EventType.CREATE,
            label="X",
            statement="NOT CYPHER ((",
        )
        report = analyse_termination([broken])
        assert not report.guaranteed_termination
