"""Tests for the trigger engine semantics via GraphSession.

Covers the dimensions of Section 4.2: action times, granularities,
transition variables, ordering, cascading and the recursion safety net.
"""

import datetime

import pytest

from repro.triggers import GraphSession, TriggerExecutionError, TriggerRecursionError
from repro.tx import TransactionAborted

CLOCK = lambda: datetime.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731


@pytest.fixture
def session():
    return GraphSession(clock=CLOCK)


class TestSimpleReactions:
    def test_after_create_node_trigger(self, session):
        session.create_trigger("""
            CREATE TRIGGER OnPatient AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'new patient', ssn: NEW.ssn, time: datetime()}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["ssn"] == "P1"
        assert alerts[0]["time"] == CLOCK()

    def test_condition_filters_activations(self, session):
        session.create_trigger("""
            CREATE TRIGGER OnlyVaccinated AFTER CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.vaccinated > 0
            BEGIN CREATE (:Alert {desc: 'vaccinated patient'}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1', vaccinated: 0})")
        session.run("CREATE (:Patient {ssn: 'P2', vaccinated: 2})")
        assert len(session.alerts()) == 1

    def test_each_granularity_fires_per_item(self, session):
        session.create_trigger("""
            CREATE TRIGGER PerItem AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {ssn: NEW.ssn}) END
        """)
        session.run("UNWIND ['A', 'B', 'C'] AS s CREATE (:Patient {ssn: s})")
        assert sorted(a["ssn"] for a in session.alerts()) == ["A", "B", "C"]

    def test_all_granularity_fires_once_per_statement(self, session):
        session.create_trigger("""
            CREATE TRIGGER PerStatement AFTER CREATE ON 'Patient' FOR ALL NODES
            BEGIN CREATE (:Alert {count: size(NEWNODES)}) END
        """)
        session.run("UNWIND ['A', 'B', 'C'] AS s CREATE (:Patient {ssn: s})")
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["count"] == 3

    def test_relationship_trigger_with_pattern_condition(self, session):
        session.create_trigger("""
            CREATE TRIGGER NewCriticalLineage AFTER CREATE ON 'BelongsTo' FOR EACH RELATIONSHIP
            WHEN
              MATCH (s:Sequence)-[NEW]-(l:Lineage)
              WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) }
            BEGIN
              CREATE (:Alert {desc: 'New critical lineage', lineage: l.name})
            END
        """)
        session.run("CREATE (:Mutation {name: 'Spike:D614G'})-[:Risk]->(:CriticalEffect {description: 'infectivity'})")
        session.run("MATCH (m:Mutation) CREATE (m)-[:FoundIn]->(:Sequence {accession: 'S1'})")
        session.run("CREATE (:Lineage {name: 'B.1.1.7'})")
        # relationship created last: sequence S1 belongs to the lineage
        session.run(
            "MATCH (s:Sequence {accession: 'S1'}), (l:Lineage {name: 'B.1.1.7'}) "
            "CREATE (s)-[:BelongsTo]->(l)"
        )
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["lineage"] == "B.1.1.7"
        # a sequence with no critical mutation does not raise an alert
        session.run("CREATE (:Sequence {accession: 'S2'})")
        session.run(
            "MATCH (s:Sequence {accession: 'S2'}), (l:Lineage {name: 'B.1.1.7'}) "
            "CREATE (s)-[:BelongsTo]->(l)"
        )
        assert len(session.alerts()) == 1

    def test_property_set_trigger_old_new(self, session):
        session.create_trigger("""
            CREATE TRIGGER WhoDesignationChange AFTER SET ON 'Lineage'.'whoDesignation' FOR EACH NODE
            WHEN OLD.whoDesignation <> NEW.whoDesignation
            BEGIN CREATE (:Alert {desc: 'New designation', before: OLD.whoDesignation, after: NEW.whoDesignation}) END
        """)
        session.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        session.run("MATCH (l:Lineage {name: 'B.1.617.2'}) SET l.whoDesignation = 'Delta'")
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["before"] == "Indian"
        assert alerts[0]["after"] == "Delta"
        # setting the same value again does not fire (condition is false)
        session.run("MATCH (l:Lineage {name: 'B.1.617.2'}) SET l.whoDesignation = 'Delta'")
        assert len(session.alerts()) == 1

    def test_delete_trigger_uses_old(self, session):
        session.create_trigger("""
            CREATE TRIGGER PatientGone AFTER DELETE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'patient removed', ssn: OLD.ssn}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        session.run("MATCH (p:Patient {ssn: 'P1'}) DETACH DELETE p")
        assert session.alerts()[0]["ssn"] == "P1"

    def test_remove_property_trigger(self, session):
        session.create_trigger("""
            CREATE TRIGGER PrognosisCleared AFTER REMOVE ON 'Patient'.'prognosis' FOR EACH NODE
            BEGIN CREATE (:Alert {was: OLD.prognosis}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1', prognosis: 'severe'})")
        session.run("MATCH (p:Patient {ssn: 'P1'}) REMOVE p.prognosis")
        assert session.alerts()[0]["was"] == "severe"

    def test_referencing_aliases(self, session):
        session.create_trigger("""
            CREATE TRIGGER Renamed AFTER SET ON 'Lineage'.'whoDesignation'
            REFERENCING OLD AS previous, NEW AS updated
            FOR EACH NODE
            WHEN previous.whoDesignation <> updated.whoDesignation
            BEGIN CREATE (:Alert {before: previous.whoDesignation, after: updated.whoDesignation}) END
        """)
        session.run("CREATE (:Lineage {whoDesignation: 'Indian', name: 'x'})")
        session.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        assert session.alerts()[0]["after"] == "Delta"


class TestSetGranularityConditions:
    def seed_hospital(self, session, patients=3, beds=5):
        session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: $beds})", {"beds": beds})
        for i in range(patients):
            session.run(
                "MATCH (h:Hospital {name: 'Sacco'}) "
                "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: $ssn})-[:TreatedAt]->(h)",
                {"ssn": f"P{i}"},
            )

    def test_threshold_trigger_with_aggregate_condition(self, session):
        session.create_trigger("""
            CREATE TRIGGER IcuPatientsOverThreshold AFTER CREATE ON 'IcuPatient' FOR ALL NODES
            WHEN
              MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
              WITH count(DISTINCT p) AS icuPat
              WHERE icuPat > 3
            BEGIN
              CREATE (:Alert {desc: 'ICU patients at Sacco Hospital are more than 3'})
            END
        """)
        self.seed_hospital(session, patients=3)
        assert session.alerts() == []  # exactly 3: not over threshold
        session.run(
            "MATCH (h:Hospital {name: 'Sacco'}) "
            "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: 'P99'})-[:TreatedAt]->(h)"
        )
        assert len(session.alerts()) == 1

    def test_newnodes_virtual_label_in_condition(self, session):
        self.seed_hospital(session, patients=2)
        session.create_trigger("""
            CREATE TRIGGER IcuPatientIncrease AFTER CREATE ON 'IcuPatient' FOR ALL NODES
            WHEN
              MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
              MATCH (pn:NEWNODES)
              WITH count(DISTINCT pn) AS newIcu, count(DISTINCT p) AS totalIcu
              WHERE newIcu * 1.0 / totalIcu > 0.5
            BEGIN
              CREATE (:Alert {desc: 'ICU patients increased by more than 50%', new: newIcu, total: totalIcu})
            END
        """)
        session.engine.clear_firings()
        # admitting 3 new patients at once: 3 new / 5 total > 50%
        session.run(
            "MATCH (h:Hospital {name: 'Sacco'}) "
            "UNWIND ['N1', 'N2', 'N3'] AS s "
            "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: s})-[:TreatedAt]->(h)"
        )
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["new"] == 3
        assert alerts[0]["total"] == 5


class TestActionTimes:
    def test_before_trigger_conditions_new_state(self, session):
        session.create_trigger("""
            CREATE TRIGGER NormalisePrognosis BEFORE CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.prognosis IS NULL
            BEGIN MATCH (p:NEW) SET p.prognosis = 'unknown' END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        session.run("CREATE (:Patient {ssn: 'P2', prognosis: 'mild'})")
        rows = {p.properties["ssn"]: p.properties["prognosis"]
                for p in session.graph.nodes_with_label("Patient")}
        assert rows == {"P1": "unknown", "P2": "mild"}

    def test_before_runs_before_after(self, session):
        order = []
        session.create_trigger("""
            CREATE TRIGGER A1 AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Log {phase: 'after', prognosis: NEW.prognosis}) END
        """)
        session.create_trigger("""
            CREATE TRIGGER B1 BEFORE CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.prognosis IS NULL
            BEGIN MATCH (p:NEW) SET p.prognosis = 'unknown' END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        logs = session.graph.nodes_with_label("Log")
        # the AFTER trigger observes the value written by the BEFORE trigger
        assert logs[0].properties["prognosis"] == "unknown"
        del order

    def test_oncommit_sees_whole_transaction(self, session):
        session.create_trigger("""
            CREATE TRIGGER CommitSummary ONCOMMIT CREATE ON 'Patient' FOR ALL NODES
            BEGIN CREATE (:Alert {desc: 'admissions committed', count: size(NEWNODES)}) END
        """)
        with session.transaction():
            session.run("CREATE (:Patient {ssn: 'P1'})")
            session.run("CREATE (:Patient {ssn: 'P2'})")
            # not yet fired inside the transaction
            assert session.alerts() == []
        alerts = session.alerts()
        assert len(alerts) == 1
        assert alerts[0]["count"] == 2

    def test_oncommit_can_abort_transaction(self, session):
        session.create_trigger("""
            CREATE TRIGGER RejectUnknownPatients ONCOMMIT CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.ssn IS NULL
            BEGIN CALL db.abort('patients must have an ssn') END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        with pytest.raises(TransactionAborted):
            session.run("CREATE (:Patient {name: 'anonymous'})")
        # the aborted transaction left no trace
        assert session.graph.count_nodes_with_label("Patient") == 1

    def test_detached_trigger_runs_after_commit_in_new_transaction(self, session):
        session.create_trigger("""
            CREATE TRIGGER AuditAdmission DETACHED CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:AuditEntry {ssn: NEW.ssn}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        assert session.graph.count_nodes_with_label("AuditEntry") == 1
        assert session.manager.committed_count == 2  # user tx + autonomous tx

    def test_detached_not_run_when_transaction_aborts(self, session):
        session.create_trigger("""
            CREATE TRIGGER RejectAll ONCOMMIT CREATE ON 'Patient' FOR EACH NODE
            BEGIN CALL db.abort('no patients today') END
        """)
        session.create_trigger("""
            CREATE TRIGGER Audit DETACHED CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:AuditEntry {ssn: NEW.ssn}) END
        """)
        with pytest.raises(TransactionAborted):
            session.run("CREATE (:Patient {ssn: 'P1'})")
        assert session.graph.count_nodes_with_label("AuditEntry") == 0


class TestOrderingAndCascading:
    def test_creation_time_ordering(self, session):
        session.create_trigger("""
            CREATE TRIGGER Second AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Log {order: 'first-installed'}) END
        """)
        session.create_trigger("""
            CREATE TRIGGER First AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Log {order: 'second-installed'}) END
        """)
        session.run("CREATE (:Patient {ssn: 'P1'})")
        logs = [f for f in session.engine.firings if f.executed]
        assert [f.trigger_name for f in logs] == ["Second", "First"]

    def test_cascading_chain(self, session):
        session.create_trigger("""
            CREATE TRIGGER RaiseAlert AFTER CREATE ON 'Mutation' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'mutation seen', mutation: NEW.name}) END
        """)
        session.create_trigger("""
            CREATE TRIGGER EscalateAlert AFTER CREATE ON 'Alert' FOR EACH NODE
            WHEN NEW.mutation IS NOT NULL
            BEGIN CREATE (:Escalation {target: NEW.mutation}) END
        """)
        session.run("CREATE (:Mutation {name: 'Spike:D614G'})")
        assert session.graph.count_nodes_with_label("Alert") == 1
        assert session.graph.count_nodes_with_label("Escalation") == 1
        depths = {f.trigger_name: f.depth for f in session.engine.firings if f.executed}
        assert depths["RaiseAlert"] == 0
        assert depths["EscalateAlert"] == 1

    def test_runaway_cascade_raises_recursion_error(self):
        session = GraphSession(clock=CLOCK, max_cascade_depth=5)
        session.create_trigger("""
            CREATE TRIGGER SelfFeeding AFTER CREATE ON 'Alert' FOR EACH NODE
            BEGIN CREATE (:Alert {generation: coalesce(NEW.generation, 0) + 1}) END
        """)
        with pytest.raises(TriggerRecursionError):
            session.run("CREATE (:Alert {generation: 0})")

    def test_bounded_cascade_terminates(self, session):
        # Relocation-style cascade that converges because the condition
        # eventually becomes false (bed availability check).
        session.run("CREATE (:Hospital {name: 'H1', icuBeds: 1})")
        session.run("CREATE (:Hospital {name: 'H2', icuBeds: 1})")
        session.run("CREATE (:Hospital {name: 'H3', icuBeds: 5})")
        session.run(
            "MATCH (a:Hospital {name:'H1'}), (b:Hospital {name:'H2'}), (c:Hospital {name:'H3'}) "
            "CREATE (a)-[:ConnectedTo {distance: 10}]->(b), (b)-[:ConnectedTo {distance: 20}]->(c)"
        )
        session.create_trigger("""
            CREATE TRIGGER MoveWhenFull AFTER CREATE ON 'TreatedAt' FOR EACH RELATIONSHIP
            WHEN
              MATCH (p:IcuPatient)-[NEW]->(h:Hospital)
              MATCH (q:IcuPatient)-[:TreatedAt]->(h)
              WITH h, p, count(DISTINCT q) AS occupancy
              WHERE occupancy > h.icuBeds
              MATCH (h)-[c:ConnectedTo]-(next:Hospital)
              WITH p, h, next ORDER BY c.distance LIMIT 1
            BEGIN
              MATCH (p)-[t:TreatedAt]->(h) DELETE t
              CREATE (p)-[:TreatedAt]->(next)
            END
        """)
        session.run(
            "MATCH (h:Hospital {name: 'H1'}) "
            "CREATE (:Patient:IcuPatient {ssn: 'A'})-[:TreatedAt]->(h)"
        )
        session.run(
            "MATCH (h:Hospital {name: 'H1'}) "
            "CREATE (:Patient:IcuPatient {ssn: 'B'})-[:TreatedAt]->(h)"
        )
        # patient B overflowed H1 and was moved along the chain until a bed was free
        locations = {
            row["ssn"]: row["hospital"]
            for row in session.run(
                "MATCH (p:IcuPatient)-[:TreatedAt]->(h:Hospital) "
                "RETURN p.ssn AS ssn, h.name AS hospital"
            )
        }
        assert locations["A"] == "H1"
        assert locations["B"] in {"H2", "H3"}

    def test_stop_and_start_trigger(self, session):
        session.create_trigger("""
            CREATE TRIGGER Paused AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        session.stop_trigger("Paused")
        session.run("CREATE (:Patient {ssn: 'P1'})")
        assert session.alerts() == []
        session.start_trigger("Paused")
        session.run("CREATE (:Patient {ssn: 'P2'})")
        assert len(session.alerts()) == 1

    def test_drop_trigger(self, session):
        session.create_trigger("""
            CREATE TRIGGER Dropped AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        session.drop_trigger("Dropped")
        session.run("CREATE (:Patient {ssn: 'P1'})")
        assert session.alerts() == []

    def test_execution_counters(self, session):
        session.create_trigger("""
            CREATE TRIGGER Counted AFTER CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.vaccinated > 0
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        session.run("CREATE (:Patient {vaccinated: 1})")
        session.run("CREATE (:Patient {vaccinated: 0})")
        installed = session.registry.get("Counted")
        assert installed.executions == 1
        assert installed.suppressed == 1
        assert session.engine.execution_counts()["Counted"] == 1
        summary = session.engine.firing_summary()["Counted"]
        assert summary == {"executed": 1, "suppressed": 1, "max_depth": 0}


class TestErrorsAndRollback:
    def test_statement_error_wrapped_and_rolled_back(self, session):
        session.create_trigger("""
            CREATE TRIGGER Broken AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {x: nosuchfunction(NEW.ssn)}) END
        """)
        with pytest.raises(TriggerExecutionError):
            session.run("CREATE (:Patient {ssn: 'P1'})")
        # auto-commit transaction rolled back: neither patient nor alert remain
        assert session.graph.node_count() == 0

    def test_condition_error_wrapped(self, session):
        session.create_trigger("""
            CREATE TRIGGER BrokenCondition AFTER CREATE ON 'Patient' FOR EACH NODE
            WHEN nosuchfunction(NEW.ssn) = 1
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        with pytest.raises(TriggerExecutionError):
            session.run("CREATE (:Patient {ssn: 'P1'})")

    def test_transaction_block_rolls_back_trigger_effects(self, session):
        session.create_trigger("""
            CREATE TRIGGER SideEffect AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.run("CREATE (:Patient {ssn: 'P1'})")
                assert len(session.alerts()) == 1  # visible inside the tx
                raise RuntimeError("user aborts")
        assert session.alerts() == []
        assert session.graph.node_count() == 0

    def test_read_only_statement_fires_nothing(self, session):
        session.create_trigger("""
            CREATE TRIGGER Never AFTER CREATE ON 'Patient' FOR EACH NODE
            BEGIN CREATE (:Alert {desc: 'x'}) END
        """)
        session.run("MATCH (n) RETURN count(n)")
        assert session.engine.firings == []
