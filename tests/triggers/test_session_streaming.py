"""GraphSession.run streaming semantics and auto-commit safety."""

from __future__ import annotations

import pytest

from repro.cypher.errors import CypherRuntimeError
from repro.cypher.result import Result
from repro.triggers import GraphSession


@pytest.fixture
def session() -> GraphSession:
    s = GraphSession()
    s.run("CREATE (:Item {name: 'ok', value: 1})")
    s.run("CREATE (:Item {name: 'bad', value: 0})")
    return s


class TestStreamingAutoCommit:
    def test_read_commits_when_stream_is_exhausted(self, session):
        before = session.manager.committed_count
        result = session.run("MATCH (i:Item) RETURN i.name AS name")
        # Lazily consumed: the auto-commit transaction is still open.
        assert session.manager.committed_count == before
        assert sorted(record["name"] for record in result) == ["bad", "ok"]
        assert session.manager.committed_count == before + 1

    def test_consume_finalizes_and_reports_plan(self, session):
        summary = session.run("MATCH (i:Item) RETURN i.name AS name").consume()
        assert "LabelScan(Item)" in summary.plan
        assert summary.result_available_after is not None
        assert summary.result_consumed_after is not None
        assert summary.counters.contains_updates() is False
        assert summary.as_dict()["counters"]["nodes_created"] == 0

    def test_failure_while_draining_rolls_back(self, session):
        """Regression: an error raised mid-stream must roll the tx back."""
        before_rollbacks = session.manager.rolled_back_count
        before_commits = session.manager.committed_count
        result = session.run("MATCH (i:Item) RETURN 1 / i.value AS inv")
        assert next(result)["inv"] == 1  # the 'ok' row streams out fine
        with pytest.raises(CypherRuntimeError):
            next(result)  # the 'bad' row divides by zero
        assert session.manager.rolled_back_count == before_rollbacks + 1
        assert session.manager.committed_count == before_commits
        # the session stays usable afterwards
        assert session.run("MATCH (i:Item) RETURN count(*) AS n").single("n") == 2

    def test_failure_during_compat_materialization_rolls_back(self, session):
        before = session.manager.rolled_back_count
        result = session.run("MATCH (i:Item) RETURN 1 / i.value AS inv")
        with pytest.raises(CypherRuntimeError):
            result.rows  # eager shim drains the stream
        assert session.manager.rolled_back_count == before + 1

    def test_new_statement_detaches_pending_stream(self, session):
        pending = session.run("MATCH (i:Item) RETURN i.name AS name")
        session.run("CREATE (:Item {name: 'later', value: 2})")
        # the pending result was buffered before the write ran
        assert sorted(r["name"] for r in pending) == ["bad", "ok"]
        fresh = session.run("MATCH (i:Item) RETURN i.name AS name")
        assert sorted(r["name"] for r in fresh) == ["bad", "later", "ok"]

    def test_write_statements_apply_eagerly(self, session):
        result = session.run("CREATE (:Item {name: 'eager', value: 3})")
        assert isinstance(result, Result)
        # no consumption needed: the write committed inside run()
        assert session.graph.count_nodes_with_label("Item") == 3
        assert result.consume().counters.nodes_created == 1

    def test_triggers_fire_for_eager_writes_without_consumption(self):
        session = GraphSession()
        session.create_trigger(
            "CREATE TRIGGER Audit AFTER CREATE ON 'Item' FOR EACH NODE "
            "BEGIN CREATE (:Log) END"
        )
        session.run("CREATE (:Item {name: 'x'})")
        assert session.graph.count_nodes_with_label("Log") == 1

    def test_streaming_inside_explicit_transaction_is_materialized(self, session):
        with session.transaction():
            result = session.run("MATCH (i:Item) RETURN i.name AS name")
            session.run("CREATE (:Item {name: 'tx', value: 9})")
            assert sorted(r["name"] for r in result) == ["bad", "ok"]

    def test_single_on_streamed_result(self, session):
        value = session.run(
            "MATCH (i:Item {name: 'ok'}) RETURN i.value AS v"
        ).single("v")
        assert value == 1

    def test_single_on_multi_row_result_still_finalizes(self, session):
        """Regression: a failed single() must not leave the tx open."""
        before = session.manager.committed_count
        result = session.run("MATCH (i:Item) RETURN i.name AS name")
        with pytest.raises(ValueError):
            result.single("name")
        assert result.consumed
        assert session.manager.committed_count == before + 1

    def test_consumed_after_reflects_execution_not_caller_idle_time(self, session):
        result = session.run("CREATE (:Item {name: 'timed', value: 4})")
        recorded = result.summary().result_consumed_after
        import time as _time

        _time.sleep(0.05)
        assert result.consume().result_consumed_after == recorded
        assert recorded < 50  # ms; the write itself is sub-millisecond
