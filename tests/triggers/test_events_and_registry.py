"""Tests for activation computation (Table 3 semantics) and the registry."""

import pytest

from repro.graph import PropertyGraph
from repro.tx import Transaction
from repro.triggers import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    TriggerDefinition,
    TriggerDefinitionError,
    TriggerRegistrationError,
    TriggerRegistry,
    compute_activations,
)


def definition(**overrides):
    base = dict(
        name="T",
        time=ActionTime.AFTER,
        event=EventType.CREATE,
        label="Patient",
        statement="CREATE (:Alert)",
    )
    base.update(overrides)
    return TriggerDefinition(**base)


@pytest.fixture
def graph():
    return PropertyGraph()


@pytest.fixture
def tx(graph):
    return Transaction(graph)


class TestNodeActivations:
    def test_create_node(self, tx):
        tx.create_node(["Patient"], {"ssn": "P1"})
        tx.create_node(["Hospital"])
        activations = compute_activations(definition(), tx.statement_delta)
        assert len(activations) == 1
        assert activations[0].old is None
        assert activations[0].new.properties["ssn"] == "P1"

    def test_create_ignores_other_labels(self, tx):
        tx.create_node(["Hospital"])
        assert compute_activations(definition(), tx.statement_delta) == []

    def test_delete_node(self, tx):
        node = tx.create_node(["Patient"], {"ssn": "P1"})
        tx.end_statement()
        tx.delete_node(node.id)
        activations = compute_activations(
            definition(event=EventType.DELETE), tx.statement_delta
        )
        assert len(activations) == 1
        assert activations[0].new is None
        assert activations[0].old.properties["ssn"] == "P1"

    def test_set_property_with_target_property(self, tx):
        node = tx.create_node(["Lineage"], {"whoDesignation": "Indian"})
        tx.end_statement()
        tx.set_node_property(node.id, "whoDesignation", "Delta")
        trigger = definition(event=EventType.SET, label="Lineage", property="whoDesignation")
        activations = compute_activations(trigger, tx.statement_delta)
        assert len(activations) == 1
        assert activations[0].old.properties["whoDesignation"] == "Indian"
        assert activations[0].new.properties["whoDesignation"] == "Delta"

    def test_set_property_other_property_ignored(self, tx):
        node = tx.create_node(["Lineage"], {"name": "B.1.1.7"})
        tx.end_statement()
        tx.set_node_property(node.id, "name", "B.1.617.2")
        trigger = definition(event=EventType.SET, label="Lineage", property="whoDesignation")
        assert compute_activations(trigger, tx.statement_delta) == []

    def test_set_without_property_catches_any_property(self, tx):
        node = tx.create_node(["Lineage"], {"name": "X"})
        tx.end_statement()
        tx.set_node_property(node.id, "name", "Y")
        trigger = definition(event=EventType.SET, label="Lineage")
        assert len(compute_activations(trigger, tx.statement_delta)) == 1

    def test_set_label_on_target_node(self, tx):
        node = tx.create_node(["Patient"])
        tx.end_statement()
        tx.add_label(node.id, "IcuPatient")
        trigger = definition(event=EventType.SET, label="Patient")
        assert len(compute_activations(trigger, tx.statement_delta)) == 1

    def test_setting_the_target_label_itself_never_activates(self, tx):
        node = tx.create_node(["Patient"])
        tx.end_statement()
        tx.add_label(node.id, "IcuPatient")
        # The trigger targets IcuPatient: the assignment of IcuPatient itself
        # is excluded by the Section 4.2 legality rule.
        trigger = definition(event=EventType.SET, label="IcuPatient")
        assert compute_activations(trigger, tx.statement_delta) == []

    def test_remove_property(self, tx):
        node = tx.create_node(["Patient"], {"prognosis": "severe"})
        tx.end_statement()
        tx.remove_node_property(node.id, "prognosis")
        trigger = definition(event=EventType.REMOVE, label="Patient", property="prognosis")
        activations = compute_activations(trigger, tx.statement_delta)
        assert len(activations) == 1
        assert activations[0].old.properties["prognosis"] == "severe"
        assert activations[0].new is None

    def test_remove_label_from_target_node(self, tx):
        node = tx.create_node(["Patient", "IcuPatient"])
        tx.end_statement()
        tx.remove_label(node.id, "IcuPatient")
        trigger = definition(event=EventType.REMOVE, label="Patient")
        assert len(compute_activations(trigger, tx.statement_delta)) == 1
        # but not for the trigger targeting the removed label itself
        trigger = definition(event=EventType.REMOVE, label="IcuPatient")
        assert compute_activations(trigger, tx.statement_delta) == []


class TestRelationshipActivations:
    def make_rel(self, tx, rel_type="BelongsTo", props=None):
        a = tx.create_node(["Sequence"])
        b = tx.create_node(["Lineage"])
        return tx.create_relationship(rel_type, a.id, b.id, props or {})

    def test_create_relationship(self, tx):
        self.make_rel(tx)
        trigger = definition(label="BelongsTo", item=ItemKind.RELATIONSHIP)
        activations = compute_activations(trigger, tx.statement_delta)
        assert len(activations) == 1
        assert activations[0].new.type == "BelongsTo"

    def test_delete_relationship(self, tx):
        rel = self.make_rel(tx)
        tx.end_statement()
        tx.delete_relationship(rel.id)
        trigger = definition(
            label="BelongsTo", item=ItemKind.RELATIONSHIP, event=EventType.DELETE
        )
        assert len(compute_activations(trigger, tx.statement_delta)) == 1

    def test_set_relationship_property(self, tx):
        rel = self.make_rel(tx, "ConnectedTo", {"distance": 100})
        tx.end_statement()
        tx.set_relationship_property(rel.id, "distance", 90)
        trigger = definition(
            label="ConnectedTo",
            item=ItemKind.RELATIONSHIP,
            event=EventType.SET,
            property="distance",
        )
        activations = compute_activations(trigger, tx.statement_delta)
        assert activations[0].old.properties["distance"] == 100
        assert activations[0].new.properties["distance"] == 90

    def test_node_trigger_ignores_relationship_events(self, tx):
        self.make_rel(tx)
        trigger = definition(label="BelongsTo", item=ItemKind.NODE)
        assert compute_activations(trigger, tx.statement_delta) == []


class TestRegistry:
    def test_install_and_order(self):
        registry = TriggerRegistry()
        registry.install(definition(name="B"))
        registry.install(definition(name="A"))
        assert registry.names() == ["B", "A"]  # creation order, not alphabetical
        assert len(registry) == 2
        assert "A" in registry

    def test_install_from_text(self):
        registry = TriggerRegistry()
        installed = registry.install(
            "CREATE TRIGGER FromText AFTER CREATE ON X FOR EACH NODE BEGIN CREATE (:Y) END"
        )
        assert installed.name == "FromText"

    def test_duplicate_name_rejected(self):
        registry = TriggerRegistry()
        registry.install(definition(name="T"))
        with pytest.raises(TriggerRegistrationError):
            registry.install(definition(name="T"))

    def test_drop_and_drop_all(self):
        registry = TriggerRegistry()
        registry.install(definition(name="T1"))
        registry.install(definition(name="T2"))
        registry.drop("T1")
        assert registry.names() == ["T2"]
        assert registry.drop_all() == 1
        assert len(registry) == 0

    def test_drop_unknown_rejected(self):
        registry = TriggerRegistry()
        with pytest.raises(TriggerRegistrationError):
            registry.drop("missing")

    def test_stop_start(self):
        registry = TriggerRegistry()
        registry.install(definition(name="T"))
        registry.stop("T")
        assert registry.ordered(enabled_only=True) == []
        registry.start("T")
        assert len(registry.ordered(enabled_only=True)) == 1

    def test_filter_by_action_time(self):
        registry = TriggerRegistry()
        registry.install(definition(name="A", time=ActionTime.AFTER))
        registry.install(definition(name="C", time=ActionTime.ONCOMMIT))
        names = [t.name for t in registry.ordered(times=(ActionTime.ONCOMMIT,))]
        assert names == ["C"]

    def test_ordered_accepts_one_shot_iterator(self):
        # `times` is documented as an Iterable; a generator must filter
        # correctly and must not poison the memoised order cache
        registry = TriggerRegistry()
        registry.install(definition(name="A", time=ActionTime.AFTER))
        from_generator = registry.ordered(
            times=(t for t in (ActionTime.AFTER,)), enabled_only=True
        )
        assert [t.name for t in from_generator] == ["A"]
        from_tuple = registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)
        assert [t.name for t in from_tuple] == ["A"]

    def test_ordered_respects_direct_enabled_toggle(self):
        # InstalledTrigger.enabled is public; toggling it without going
        # through stop()/start() must be visible immediately
        registry = TriggerRegistry()
        registry.install(definition(name="A", time=ActionTime.AFTER))
        assert len(registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)) == 1
        registry.get("A").enabled = False
        assert registry.ordered(times=(ActionTime.AFTER,), enabled_only=True) == []
        registry.get("A").enabled = True
        assert len(registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)) == 1

    def test_ordered_results_are_caller_owned_copies(self):
        registry = TriggerRegistry()
        registry.install(definition(name="A", time=ActionTime.AFTER))
        first = registry.ordered(times=(ActionTime.AFTER,))
        first.clear()
        assert [t.name for t in registry.ordered(times=(ActionTime.AFTER,))] == ["A"]

    def test_ordered_cache_invalidated_on_changes(self):
        registry = TriggerRegistry()
        registry.install(definition(name="A", time=ActionTime.AFTER))
        assert len(registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)) == 1
        registry.install(definition(name="B", time=ActionTime.AFTER))
        assert len(registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)) == 2
        registry.stop("A")
        assert [
            t.name for t in registry.ordered(times=(ActionTime.AFTER,), enabled_only=True)
        ] == ["B"]
        registry.drop("B")
        assert registry.ordered(times=(ActionTime.AFTER,), enabled_only=True) == []


class TestDefinitionValidation:
    def test_statement_may_not_touch_target_label(self):
        registry = TriggerRegistry()
        bad = definition(statement="MATCH (n:Patient) SET n:Patient")
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)
        bad = definition(statement="MATCH (n) REMOVE n:Patient")
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_statement_touching_other_labels_is_fine(self):
        registry = TriggerRegistry()
        registry.install(definition(statement="MATCH (n:Patient) SET n:Reviewed"))

    def test_foreach_bodies_are_checked(self):
        registry = TriggerRegistry()
        bad = definition(
            statement="MATCH (n:X) FOREACH (i IN [1] | SET n:Patient)"
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_before_trigger_cannot_create(self):
        registry = TriggerRegistry()
        bad = definition(time=ActionTime.BEFORE, statement="CREATE (:Alert)")
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_before_trigger_may_set(self):
        registry = TriggerRegistry()
        registry.install(
            definition(
                time=ActionTime.BEFORE,
                statement="MATCH (n:NEW) SET n.normalised = true",
            )
        )

    def test_unparseable_statement_rejected(self):
        registry = TriggerRegistry()
        with pytest.raises(TriggerDefinitionError):
            registry.install(definition(statement="THIS IS NOT CYPHER ((("))

    def test_set_level_variable_requires_for_all(self):
        from repro.triggers import ReferencingAlias, TransitionVariable

        registry = TriggerRegistry()
        bad = definition(
            referencing=(ReferencingAlias(TransitionVariable.NEWNODES, "admitted"),),
            granularity=Granularity.EACH,
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_item_level_variable_requires_for_each(self):
        from repro.triggers import ReferencingAlias, TransitionVariable

        registry = TriggerRegistry()
        bad = definition(
            referencing=(ReferencingAlias(TransitionVariable.NEW, "created"),),
            granularity=Granularity.ALL,
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_relationship_variable_on_node_trigger_rejected(self):
        from repro.triggers import ReferencingAlias, TransitionVariable

        registry = TriggerRegistry()
        bad = definition(
            referencing=(ReferencingAlias(TransitionVariable.NEWRELS, "rels"),),
            granularity=Granularity.ALL,
            item=ItemKind.NODE,
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_old_variable_on_create_rejected(self):
        from repro.triggers import ReferencingAlias, TransitionVariable

        registry = TriggerRegistry()
        bad = definition(
            event=EventType.CREATE,
            referencing=(ReferencingAlias(TransitionVariable.OLD, "before"),),
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)

    def test_new_variable_on_delete_rejected(self):
        from repro.triggers import ReferencingAlias, TransitionVariable

        registry = TriggerRegistry()
        bad = definition(
            event=EventType.DELETE,
            referencing=(ReferencingAlias(TransitionVariable.NEW, "after"),),
        )
        with pytest.raises(TriggerDefinitionError):
            registry.install(bad)
