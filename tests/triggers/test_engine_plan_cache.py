"""Trigger-engine hot-path regressions after moving to the shared plan cache.

The engine used to keep two ad-hoc per-trigger dicts; conditions and action
statements now compile through ``repro.cypher.planner.PLAN_CACHE``, shared
with every other execution layer.  These tests pin down the properties that
move relied on: one parse per distinct text regardless of firing count,
cache hits on repeated fires, sharing across engines, and identical firing
accounting on the fast suppress path.
"""

import datetime as dt
import itertools

from repro.cypher.planner import PLAN_CACHE
from repro.graph.store import PropertyGraph
from repro.triggers.ast import ActionTime, EventType, ItemKind, TriggerDefinition
from repro.triggers.engine import _DeltaLabelSummary, _may_activate
from repro.triggers.events import compute_activations
from repro.triggers.session import GraphSession
from repro.tx.transaction import Transaction

CLOCK = lambda: dt.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731


def make_session() -> GraphSession:
    return GraphSession(clock=CLOCK)


class TestConditionCompilation:
    def test_condition_parsed_once_over_many_fires(self):
        PLAN_CACHE.clear()
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Watch AFTER CREATE ON 'Entity' FOR EACH NODE "
            "WHEN NEW.value > 100 BEGIN CREATE (:Alert) END"
        )
        for index in range(20):
            session.run("CREATE (:Entity {value: $v})", {"v": index})
        assert PLAN_CACHE.stats.condition_misses == 1
        assert PLAN_CACHE.stats.condition_hits >= 19

    def test_statement_compiles_through_global_plan_cache(self):
        PLAN_CACHE.clear()
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Audit AFTER CREATE ON 'Entity' FOR EACH NODE "
            "BEGIN CREATE (:AuditEntry {source: NEW.value}) END"
        )
        before = PLAN_CACHE.stats.snapshot()
        for index in range(10):
            session.run("CREATE (:Entity {value: $v})", {"v": index})
        after = PLAN_CACHE.stats.snapshot()
        assert session.graph.count_nodes_with_label("AuditEntry") == 10
        # the workload uses two distinct texts (the CREATE statement and the
        # trigger action); everything beyond the first compilation is a hit
        assert after["parse_misses"] - before["parse_misses"] <= 2
        assert after["plan_hits"] - before["plan_hits"] >= 18

    def test_condition_cache_shared_between_engines(self):
        PLAN_CACHE.clear()
        trigger = (
            "CREATE TRIGGER Shared AFTER CREATE ON 'Entity' FOR EACH NODE "
            "WHEN NEW.value > 7 BEGIN CREATE (:Alert) END"
        )
        first, second = make_session(), make_session()
        first.create_trigger(trigger)
        second.create_trigger(trigger)
        first.run("CREATE (:Entity {value: 1})")
        misses_after_first = PLAN_CACHE.stats.condition_misses
        second.run("CREATE (:Entity {value: 1})")
        # the second engine reuses the first engine's compiled condition
        assert PLAN_CACHE.stats.condition_misses == misses_after_first == 1


class TestFastSuppressPath:
    def test_suppressed_and_executed_counters_match_semantics(self):
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Gate AFTER CREATE ON 'Entity' FOR EACH NODE "
            "WHEN NEW.value > 10 BEGIN CREATE (:Alert {value: NEW.value}) END"
        )
        for value in (5, 15, 3, 20, 11):
            session.run("CREATE (:Entity {value: $v})", {"v": value})
        summary = session.engine.firing_summary()["Gate"]
        assert summary["executed"] == 3
        assert summary["suppressed"] == 2
        assert sorted(a["value"] for a in session.alerts()) == [11, 15, 20]
        installed = session.registry.get("Gate")
        assert installed.executions == 3
        assert installed.suppressed == 2

    def test_fast_path_audit_log_matches_slow_path_shape(self):
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Gate AFTER CREATE ON 'Entity' FOR EACH NODE "
            "WHEN NEW.value > 10 BEGIN CREATE (:Alert) END"
        )
        session.run("CREATE (:Entity {value: 99})")
        session.run("CREATE (:Entity {value: 1})")
        fired, suppressed = session.engine.firings
        assert fired.executed and fired.condition_rows == 1
        assert not suppressed.executed and suppressed.condition_rows == 0
        assert fired.trigger_name == suppressed.trigger_name == "Gate"
        assert fired.action_time == suppressed.action_time == "AFTER"

    def test_exists_conditions_still_take_the_executor_path(self):
        session = make_session()
        session.run("CREATE (:CriticalEffect {name: 'severe'})")
        session.create_trigger(
            "CREATE TRIGGER Critical AFTER CREATE ON 'Mutation' FOR EACH NODE "
            "WHEN EXISTS (NEW)-[:Causes]->(:CriticalEffect) "
            "BEGIN CREATE (:Alert {kind: 'critical'}) END"
        )
        session.run(
            "MATCH (e:CriticalEffect) CREATE (m:Mutation {name: 'x'})-[:Causes]->(e)"
        )
        session.run("CREATE (:Mutation {name: 'benign'})")
        assert len(session.alerts()) == 1

    def test_referencing_aliases_use_the_general_path(self):
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Aliased AFTER CREATE ON 'Entity' REFERENCING NEW AS fresh "
            "FOR EACH NODE "
            "WHEN fresh.value > 10 BEGIN CREATE (:Alert {value: fresh.value}) END"
        )
        session.run("CREATE (:Entity {value: 42})")
        session.run("CREATE (:Entity {value: 2})")
        assert [a["value"] for a in session.alerts()] == [42]

    def test_condition_query_triggers_unaffected(self):
        session = make_session()
        session.create_trigger(
            "CREATE TRIGGER Counted AFTER CREATE ON 'Entity' FOR EACH NODE "
            "WHEN MATCH (e:Entity) WITH count(e) AS total WHERE total >= 3 "
            "BEGIN CREATE (:Alert {total: total}) END"
        )
        for _ in range(4):
            session.run("CREATE (:Entity)")
        totals = sorted(a["total"] for a in session.alerts())
        assert totals == [3, 4]


class TestPrefilterConsistency:
    """_may_activate must over-approximate compute_activations.

    The engine skips a trigger entirely when the prefilter says no, so a
    divergence from the events-module targeting rules fails in the silent
    direction (triggers never fire).  This exercises every change kind in
    one delta against a full matrix of trigger shapes and asserts the
    implication: activations present => prefilter says maybe.
    """

    def build_delta(self):
        graph = PropertyGraph()
        tx = Transaction(graph)
        lineage = tx.create_node(["Lineage"], {"name": "B.1.1.7", "who": "Alpha"})
        seq = tx.create_node(["Sequence"], {"acc": "A1"})
        doomed = tx.create_node(["Sequence"], {"acc": "A2"})
        rel = tx.create_relationship("BelongsTo", seq.id, lineage.id, {"since": 2020})
        doomed_rel = tx.create_relationship("BelongsTo", doomed.id, lineage.id)
        tx.set_node_property(lineage.id, "who", "Delta")
        tx.add_label(lineage.id, "VariantOfConcern")
        tx.remove_label(lineage.id, "VariantOfConcern")
        tx.set_relationship_property(rel.id, "since", 2021)
        tx.remove_relationship_property(rel.id, "since")
        tx.remove_node_property(lineage.id, "who")
        tx.delete_relationship(doomed_rel.id)
        tx.delete_node(doomed.id)
        return tx.statement_delta

    def test_prefilter_over_approximates_activations(self):
        delta = self.build_delta()
        summary = _DeltaLabelSummary(delta)
        labels = ["Lineage", "Sequence", "VariantOfConcern", "BelongsTo", "Absent"]
        properties = [None, "who", "since", "acc", "other"]
        checked = 0
        for event, item, label, prop in itertools.product(
            EventType, ItemKind, labels, properties
        ):
            if prop is not None and event in (EventType.CREATE, EventType.DELETE):
                continue  # illegal combination per Section 4.2
            trigger = TriggerDefinition(
                name="probe",
                time=ActionTime.AFTER,
                event=event,
                label=label,
                property=prop,
                item=item,
                statement="CREATE (:X)",
            )
            activations = compute_activations(trigger, delta)
            if activations:
                assert _may_activate(trigger, summary), (
                    f"prefilter dropped an activating trigger: "
                    f"{event.value} {item.value} ON {label}"
                    + (f".{prop}" if prop else "")
                )
            checked += 1
        assert checked > 100  # the matrix actually covered the space
