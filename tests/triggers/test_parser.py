"""Tests for the PG-Trigger parser (the Figure 1 grammar)."""

import pytest

from repro.triggers import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    TransitionVariable,
    TriggerSyntaxError,
    parse_trigger,
    parse_triggers,
)

NEW_CRITICAL_MUTATION = """
CREATE TRIGGER NewCriticalMutation
AFTER CREATE
ON 'Mutation'
FOR EACH NODE
WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
BEGIN
CREATE (:Alert{time:DATETIME(),
desc:'New critical mutation',
mutation:NEW.name})
END
"""

WHO_DESIGNATION_CHANGE = """
CREATE TRIGGER WhoDesignationChange
AFTER SET
ON 'Lineage'.'whoDesignation'
FOR EACH NODE
WHEN OLD.whoDesignation <> NEW.whoDesignation
BEGIN
CREATE (:Alert{time: DATETIME(),
desc:'New Designation for an existing Lineage'})
END
"""

ICU_OVER_THRESHOLD = """
CREATE TRIGGER IcuPatientsOverThreshold
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
MATCH (p:HospitalizedPatient:IcuPatient)
-[:TreatedAt]-(:Hospital{name:'Sacco'})
WITH COUNT(p) AS icuPat
WHERE icuPat > 50
BEGIN
CREATE (:Alert{time:DATETIME(),desc:'ICU patients
at Sacco Hospital are more than 50'})
END
"""


class TestBasicParsing:
    def test_new_critical_mutation(self):
        t = parse_trigger(NEW_CRITICAL_MUTATION)
        assert t.name == "NewCriticalMutation"
        assert t.time == ActionTime.AFTER
        assert t.event == EventType.CREATE
        assert t.label == "Mutation"
        assert t.property is None
        assert t.granularity == Granularity.EACH
        assert t.item == ItemKind.NODE
        assert t.condition.startswith("EXISTS")
        assert "CREATE (:Alert" in t.statement

    def test_property_target(self):
        t = parse_trigger(WHO_DESIGNATION_CHANGE)
        assert t.label == "Lineage"
        assert t.property == "whoDesignation"
        assert t.target == "Lineage.whoDesignation"
        assert "OLD.whoDesignation <> NEW.whoDesignation" in t.condition

    def test_set_granularity_with_query_condition(self):
        t = parse_trigger(ICU_OVER_THRESHOLD)
        assert t.granularity == Granularity.ALL
        assert t.item == ItemKind.NODE
        assert "WITH COUNT(p) AS icuPat" in t.condition
        assert "WHERE icuPat > 50" in t.condition

    def test_unquoted_label(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON Mutation FOR EACH NODE BEGIN CREATE (:X) END"
        )
        assert t.label == "Mutation"

    def test_all_action_times(self):
        for time in ("BEFORE", "AFTER", "ONCOMMIT", "DETACHED"):
            t = parse_trigger(
                f"CREATE TRIGGER T {time} CREATE ON A FOR EACH NODE BEGIN CREATE (:X) END"
            )
            assert t.time == ActionTime(time)

    def test_all_events(self):
        for event in ("CREATE", "DELETE", "SET", "REMOVE"):
            t = parse_trigger(
                f"CREATE TRIGGER T AFTER {event} ON A FOR EACH NODE BEGIN CREATE (:X) END"
            )
            assert t.event == EventType(event)

    def test_relationship_item(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON BelongsTo FOR EACH RELATIONSHIP "
            "BEGIN CREATE (:X) END"
        )
        assert t.item == ItemKind.RELATIONSHIP

    def test_plural_item_words(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON A FOR ALL RELATIONSHIPS BEGIN CREATE (:X) END"
        )
        assert t.item == ItemKind.RELATIONSHIP
        assert t.granularity == Granularity.ALL

    def test_case_insensitive_keywords(self):
        t = parse_trigger(
            "create trigger T after create on A for each node begin create (:X) end"
        )
        assert t.time == ActionTime.AFTER

    def test_without_condition(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE BEGIN CREATE (:X) END"
        )
        assert t.condition is None


class TestReferencing:
    def test_referencing_aliases(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER SET ON Lineage REFERENCING OLD AS before, NEW AS after "
            "FOR EACH NODE WHEN before.x <> after.x BEGIN CREATE (:Alert) END"
        )
        assert t.alias_for(TransitionVariable.OLD) == "before"
        assert t.alias_for(TransitionVariable.NEW) == "after"
        assert t.transition_names()["before"] == TransitionVariable.OLD

    def test_referencing_set_level(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON IcuPatient REFERENCING NEWNODES AS admitted "
            "FOR ALL NODES BEGIN CREATE (:Alert) END"
        )
        assert t.alias_for(TransitionVariable.NEWNODES) == "admitted"

    def test_referencing_requires_alias(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger(
                "CREATE TRIGGER T AFTER CREATE ON A REFERENCING FOR EACH NODE "
                "BEGIN CREATE (:X) END"
            )


class TestStatementCapture:
    def test_nested_begin_end(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE "
            "BEGIN FOREACH (x IN [1] | CREATE (:Y)) BEGIN CREATE (:Z) END END"
        )
        assert "BEGIN CREATE (:Z) END" in t.statement

    def test_case_end_does_not_close_block(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE "
            "BEGIN MATCH (n:B) SET n.level = CASE WHEN n.x > 1 THEN 'high' ELSE 'low' END END"
        )
        assert "CASE WHEN" in t.statement
        assert t.statement.rstrip().endswith("END")

    def test_strings_containing_keywords(self):
        t = parse_trigger(
            "CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE "
            "BEGIN CREATE (:Alert {desc: 'begin and end are just words'}) END"
        )
        assert "just words" in t.statement

    def test_missing_end_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger("CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE BEGIN CREATE (:X)")

    def test_missing_begin_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger("CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE CREATE (:X) END")

    def test_empty_statement_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger("CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE BEGIN END")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger(
                "CREATE TRIGGER T AFTER CREATE ON A FOR EACH NODE BEGIN CREATE (:X) END garbage"
            )

    def test_property_target_on_create_rejected(self):
        with pytest.raises(TriggerSyntaxError):
            parse_trigger(
                "CREATE TRIGGER T AFTER CREATE ON 'A'.'x' FOR EACH NODE BEGIN CREATE (:X) END"
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text", [NEW_CRITICAL_MUTATION, WHO_DESIGNATION_CHANGE, ICU_OVER_THRESHOLD]
    )
    def test_unparse_reparse_fixpoint(self, text):
        first = parse_trigger(text)
        second = parse_trigger(first.to_pg_trigger())
        assert second.name == first.name
        assert second.time == first.time
        assert second.event == first.event
        assert second.label == first.label
        assert second.property == first.property
        assert second.granularity == first.granularity
        assert second.item == first.item
        # Condition/statement text is preserved up to surrounding whitespace.
        assert (second.condition or "").split() == (first.condition or "").split()
        assert second.statement.split() == first.statement.split()


class TestParseMany:
    def test_parse_triggers_splits_statements(self):
        text = ";\n".join(
            [NEW_CRITICAL_MUTATION.strip(), WHO_DESIGNATION_CHANGE.strip(), ICU_OVER_THRESHOLD.strip()]
        )
        definitions = parse_triggers(text)
        assert [d.name for d in definitions] == [
            "NewCriticalMutation",
            "WhoDesignationChange",
            "IcuPatientsOverThreshold",
        ]

    def test_create_inside_body_is_not_a_boundary(self):
        definitions = parse_triggers(NEW_CRITICAL_MUTATION)
        assert len(definitions) == 1

    def test_no_trigger_found(self):
        with pytest.raises(TriggerSyntaxError):
            parse_triggers("MATCH (n) RETURN n")
