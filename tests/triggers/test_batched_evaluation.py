"""Batched vs per-activation trigger evaluation: differential regression suite.

Two :class:`~repro.triggers.session.GraphSession` instances differing only
in ``batched_triggers`` must be observationally identical: same firing
order, same per-trigger execution counts, same final graph state, same
alerts, same termination behaviour — on the paper's trigger suite, on
cascades whose actions re-activate other triggers, on self-interfering
triggers (whose actions change their own condition), and on randomized
trigger sets over randomized workloads.
"""

from __future__ import annotations

import datetime as _dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.paper_triggers import (
    all_paper_triggers,
    icu_patients_over_threshold,
    new_critical_lineage,
    new_critical_mutation,
    who_designation_change,
)
from repro.datasets.workloads import (
    designation_change_stream,
    hospital_setup,
    icu_admission_stream,
    lineage_assignment_stream,
    mutation_discovery_stream,
)
from repro.graph import graph_to_dict
from repro.triggers import GraphSession
from repro.triggers.errors import TriggerRecursionError

CLOCK = lambda: _dt.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731 - deterministic


def run_pair(triggers, statements, **session_kwargs):
    """Run the same triggers+workload through both engines and compare."""
    sessions = []
    for batched in (False, True):
        # The incremental tier is switched off: this suite pins the *batched*
        # machinery specifically (the three-way comparison including the
        # incremental tier lives in test_incremental_evaluation.py).
        session = GraphSession(
            clock=CLOCK,
            batched_triggers=batched,
            incremental_triggers=False,
            **session_kwargs,
        )
        for trigger in triggers:
            session.create_trigger(trigger)
        for query, parameters in statements:
            session.run(query, parameters)
        sessions.append(session)
    per_activation, batched = sessions
    assert_equivalent(per_activation, batched)
    return per_activation, batched


def assert_equivalent(per_activation: GraphSession, batched: GraphSession) -> None:
    assert per_activation.firing_log() == batched.firing_log()
    assert per_activation.engine.execution_counts() == batched.engine.execution_counts()
    assert per_activation.alerts() == batched.alerts()
    assert graph_to_dict(per_activation.graph) == graph_to_dict(batched.graph)
    # the control engine must never have taken the batched path
    assert per_activation.engine.batch_stats["batched_activations"] == 0


# ---------------------------------------------------------------------------
# the paper's trigger sets over the synthetic COVID workloads
# ---------------------------------------------------------------------------


class TestPaperTriggerSets:
    def paper_statements(self):
        workload = (
            hospital_setup(hospitals=3, icu_beds=4)
            + mutation_discovery_stream(count=18, critical_fraction=0.4)
            + lineage_assignment_stream(sequences=12, critical_every=3)
            + designation_change_stream(changes=5)
            + icu_admission_stream(admissions=12, batch_size=3)
        )
        return [(s.query, s.parameters) for s in workload]

    def test_section62_suite_is_equivalent(self):
        run_pair(all_paper_triggers(threshold=6, fraction=0.2), self.paper_statements())

    def test_simple_reaction_triggers_take_the_batch_path(self):
        triggers = [
            new_critical_mutation(),
            new_critical_lineage(),
            who_designation_change(),
            icu_patients_over_threshold(threshold=5),
        ]
        statements = self.paper_statements() + [
            # one statement assigning a whole sequence batch to a lineage:
            # five BelongsTo activations in one delta, so NewCriticalLineage's
            # (batchable) condition query goes through the batch evaluator
            ("CREATE (:Lineage {name: 'BatchLineage'})", None),
            (
                "MATCH (l:Lineage {name: 'BatchLineage'}) "
                "UNWIND range(1, 5) AS i "
                "CREATE (:Sequence {accession: i})-[:BelongsTo]->(l)",
                None,
            ),
        ]
        _, batched = run_pair(triggers, statements)
        assert batched.engine.batch_stats["batched_activations"] >= 5


# ---------------------------------------------------------------------------
# cascades whose actions re-activate other triggers
# ---------------------------------------------------------------------------


class TestCascadingReactivation:
    def cascade_triggers(self):
        return [
            # stage 1: batchable query condition, fires for high readings
            "CREATE TRIGGER Stage1 AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END",
            # stage 2: re-activated by stage 1's creations, also batchable
            "CREATE TRIGGER Stage2 AFTER CREATE ON 'Spike' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff + 1 "
            "BEGIN CREATE (:Escalation {value: NEW.value}) END",
            # stage 3: unconditional audit of every escalation
            "CREATE TRIGGER Stage3 AFTER CREATE ON 'Escalation' FOR EACH NODE "
            "BEGIN CREATE (:Audit {value: NEW.value}) END",
        ]

    def test_cascade_identical_across_engines(self):
        statements = [
            ("CREATE (:Threshold {cutoff: 3})", None),
            ("UNWIND range(1, 8) AS i CREATE (:Reading {value: i})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Reading {value: 10 - i})", None),
        ]
        _, batched = run_pair(self.cascade_triggers(), statements)
        assert batched.graph.count_nodes_with_label("Spike") == 9
        assert batched.graph.count_nodes_with_label("Escalation") == 8
        assert batched.graph.count_nodes_with_label("Audit") == 8
        assert batched.engine.batch_stats["batched_activations"] > 0

    def test_nonterminating_cascade_raises_in_both_engines(self):
        trigger = (
            "CREATE TRIGGER Loop AFTER CREATE ON 'Ping' FOR EACH NODE "
            "WHEN MATCH (f:Flag {armed: true}) "
            "BEGIN CREATE (:Ping {value: NEW.value}) END"
        )
        logs = []
        for batched in (False, True):
            session = GraphSession(
                clock=CLOCK,
                batched_triggers=batched,
                incremental_triggers=False,
                max_cascade_depth=5,
            )
            session.create_trigger(trigger)
            session.run("CREATE (:Flag {armed: true})")
            with pytest.raises(TriggerRecursionError):
                session.run("UNWIND range(1, 3) AS i CREATE (:Ping {value: i})")
            logs.append(session.firing_log())
        assert logs[0] == logs[1]


# ---------------------------------------------------------------------------
# self-interference: actions that change their own condition
# ---------------------------------------------------------------------------


class TestSelfInterference:
    def test_self_limiting_trigger_reverifies_and_matches(self):
        trigger = (
            "CREATE TRIGGER SelfLimit AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (c:Counter) WHERE c.count < 2 "
            "BEGIN MATCH (c:Counter) SET c.count = c.count + 1 END"
        )
        statements = [
            ("CREATE (:Counter {count: 0})", None),
            ("UNWIND range(1, 6) AS i CREATE (:Item {value: i})", None),
        ]
        per_activation, batched = run_pair([trigger], statements)
        [counter] = batched.graph.nodes_with_label("Counter")
        assert counter.properties["count"] == 2
        # the batch verdicts were re-checked after the first firing
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_independent_create_only_action_skips_reverification(self):
        trigger = (
            "CREATE TRIGGER Promote AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (f:Flag {enabled: true}) "
            "BEGIN CREATE (:Promoted {value: NEW.value}) END"
        )
        statements = [
            ("CREATE (:Flag {enabled: true})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Promoted") == 5
        # CREATE (:Promoted) provably cannot match (f:Flag …): no re-checks
        assert batched.engine.batch_stats["reverified_activations"] == 0
        assert batched.engine.batch_stats["batched_activations"] >= 5

    def test_condition_enabled_by_earlier_trigger_in_same_round(self):
        # An earlier trigger's action creates the Flag a later trigger's
        # condition matches; both engines must agree on what the later
        # trigger saw for every activation of the same delta.
        triggers = [
            "CREATE TRIGGER Arm AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN NEW.value = 1 "
            "BEGIN CREATE (:Flag {enabled: true}) END",
            "CREATE TRIGGER Fire AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (f:Flag {enabled: true}) "
            "BEGIN CREATE (:Fired {value: NEW.value}) END",
        ]
        statements = [("UNWIND range(1, 4) AS i CREATE (:Item {value: i})", None)]
        _, batched = run_pair(triggers, statements)
        # Arm ran first (creation order), so Fire saw the flag for all rows
        assert batched.graph.count_nodes_with_label("Fired") == 4


    def test_exists_in_property_map_sees_own_creations(self):
        # The EXISTS sub-pattern hides inside an inline property map; the
        # action creates exactly what it matches, so batch verdicts go
        # stale after the first firing and must be re-verified.
        trigger = (
            "CREATE TRIGGER Once AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (c:Config {flag: EXISTS {(s:Spike)}}) "
            "BEGIN CREATE (:Spike) END"
        )
        statements = [
            ("CREATE (:Config {flag: false})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        # only the first activation fires; afterwards a Spike exists and
        # Config{flag: false} no longer matches
        assert batched.graph.count_nodes_with_label("Spike") == 1

    def test_exists_in_property_map_using_transition_label(self):
        # (x:NEW) inside an EXISTS inside a property map needs the
        # per-activation virtual label; the engine must refuse to batch it
        trigger = (
            "CREATE TRIGGER Tag AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (c:Config {flag: EXISTS {(x:NEW)}}) "
            "BEGIN CREATE (:Tagged {value: NEW.value}) END"
        )
        statements = [
            ("CREATE (:Config {flag: true})", None),
            ("UNWIND range(1, 2) AS i CREATE (:Reading {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Tagged") == 2
        assert batched.engine.batch_stats["batched_activations"] == 0


# ---------------------------------------------------------------------------
# footprint-based independence: SET/REMOVE actions keep batch verdicts
# when their write footprint is disjoint from the condition's reads
# ---------------------------------------------------------------------------


class TestFootprintIndependence:
    def test_set_disjoint_key_skips_reverification(self):
        # The action writes `seen`; the condition reads only `level`, so
        # the per-property analysis keeps every batch verdict.
        trigger = (
            "CREATE TRIGGER Mark AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (g:Gauge) WHERE g.level > 0 "
            "BEGIN MATCH (g:Gauge) SET g.seen = true END"
        )
        statements = [
            ("CREATE (:Gauge {level: 3})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        [gauge] = batched.graph.nodes_with_label("Gauge")
        assert gauge.properties["seen"] is True
        assert batched.engine.batch_stats["batched_activations"] >= 5
        assert batched.engine.batch_stats["reverified_activations"] == 0

    def test_match_then_create_skips_reverification(self):
        # A read-only MATCH prefix before CREATE is analysable now; the
        # created label cannot match the condition's pattern.
        trigger = (
            "CREATE TRIGGER Echo AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (g:Gauge) WHERE g.level > 0 "
            "BEGIN MATCH (g:Gauge) CREATE (:Echoed {level: g.level}) END"
        )
        statements = [
            ("CREATE (:Gauge {level: 2})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Echoed") == 4
        assert batched.engine.batch_stats["reverified_activations"] == 0

    def test_frozen_transition_read_is_not_a_live_read(self):
        # The condition reads `value` only through the frozen NEW snapshot,
        # so the action's SET of `value` cannot reach it.
        trigger = (
            "CREATE TRIGGER Stamp AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (g:Gauge) WHERE NEW.value > g.floor "
            "BEGIN MATCH (g:Gauge) SET g.value = NEW.value END"
        )
        statements = [
            ("CREATE (:Gauge {floor: 0})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        [gauge] = batched.graph.nodes_with_label("Gauge")
        assert gauge.properties["value"] == 4
        assert batched.engine.batch_stats["reverified_activations"] == 0

    def test_set_overlapping_key_still_reverifies(self):
        # The action writes the very key the condition reads: verdicts go
        # stale after the first firing and must be re-checked.
        trigger = (
            "CREATE TRIGGER Drain AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (g:Gauge) WHERE g.level > 0 "
            "BEGIN MATCH (g:Gauge) SET g.level = g.level - 1 END"
        )
        statements = [
            ("CREATE (:Gauge {level: 2})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        [gauge] = batched.graph.nodes_with_label("Gauge")
        assert gauge.properties["level"] == 0
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_remove_overlapping_label_still_reverifies(self):
        trigger = (
            "CREATE TRIGGER Disarm AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (f:Flag {on: true}) "
            "BEGIN MATCH (f:Flag) REMOVE f:Flag END"
        )
        statements = [
            ("CREATE (:Flag {on: true})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        # only the first activation fired; the label was gone afterwards
        assert batched.graph.count_nodes_with_label("Flag") == 0
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_dynamic_keys_read_widens_the_footprint(self):
        # keys(c) reads every property, so any SET must force re-checks.
        trigger = (
            "CREATE TRIGGER Widen AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (c:Cfg) WHERE size(keys(c)) > 1 "
            "BEGIN MATCH (c:Cfg) SET c.extra = true END"
        )
        statements = [
            ("CREATE (:Cfg {a: 1, b: 2})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_map_style_set_stays_unanalysable(self):
        trigger = (
            "CREATE TRIGGER Blob AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (c:Cfg) WHERE c.level > 0 "
            "BEGIN MATCH (c:Cfg) SET c += {note: 'hit'} END"
        )
        statements = [
            ("CREATE (:Cfg {level: 1})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Item {value: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.engine.batch_stats["reverified_activations"] > 0


# ---------------------------------------------------------------------------
# expanded eligibility: aggregating conditions and EXISTS predicates
# ---------------------------------------------------------------------------


class TestAggregatingConditions:
    def test_global_aggregate_condition_batches(self):
        trigger = (
            "CREATE TRIGGER Overload AFTER CREATE ON 'Patient' FOR EACH NODE "
            "WHEN MATCH (p:Patient) WITH count(p) AS c WHERE c > 3 "
            "BEGIN CREATE (:Alarm {count: 1}) END"
        )
        statements = [("UNWIND range(1, 6) AS i CREATE (:Patient {n: i})", None)]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Alarm") == 6
        assert batched.engine.batch_stats["batched_activations"] >= 6

    def test_grouped_aggregate_condition_batches(self):
        trigger = (
            "CREATE TRIGGER PerWard AFTER CREATE ON 'Admit' FOR EACH NODE "
            "WHEN MATCH (a:Admit) WITH a.ward AS ward, count(a) AS c WHERE c >= 2 "
            "BEGIN CREATE (:WardAlert {ward: ward, count: c}) END"
        )
        statements = [
            ("UNWIND ['icu','icu','er','icu','er'] AS w CREATE (:Admit {ward: w})", None)
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.engine.batch_stats["batched_activations"] >= 5

    def test_zero_row_global_aggregate_parity(self):
        # A global aggregate over an empty match still yields one row
        # (count = 0); the shared empty-bucket suffix execution must
        # reproduce that for every activation whose prefix matched nothing.
        trigger = (
            "CREATE TRIGGER NoSpikes AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (s:Spike) WITH count(s) AS c WHERE c = 0 "
            "BEGIN CREATE (:Calm {ok: true}) END"
        )
        statements = [("UNWIND range(1, 4) AS i CREATE (:Reading {v: i})", None)]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Calm") == 4
        assert batched.engine.batch_stats["batched_activations"] == 4

    def test_self_interfering_aggregate_reverifies(self):
        # The action creates the very nodes the aggregate counts, so batch
        # verdicts go stale after the first firing.
        trigger = (
            "CREATE TRIGGER CapAlarms AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (a:Alarm) WITH count(a) AS c WHERE c < 2 "
            "BEGIN CREATE (:Alarm) END"
        )
        statements = [("UNWIND range(1, 5) AS i CREATE (:Reading {v: i})", None)]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Alarm") == 2
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_order_by_limit_suffix_batches(self):
        trigger = (
            "CREATE TRIGGER TopReading AFTER CREATE ON 'Probe' FOR EACH NODE "
            "WHEN MATCH (r:Reading) WITH r ORDER BY r.v DESC LIMIT 1 WHERE r.v > 5 "
            "BEGIN CREATE (:Hot {v: r.v}) END"
        )
        statements = [
            ("UNWIND [3, 9, 6] AS v CREATE (:Reading {v: v})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Probe {n: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Hot") == 3
        assert batched.engine.batch_stats["batched_activations"] >= 3


class TestExistsPredicateConditions:
    def test_exists_predicate_batches(self):
        trigger = (
            "CREATE TRIGGER HasCfg AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN NEW.v > 1 AND EXISTS {(c:Config {on: true})} "
            "BEGIN CREATE (:Seen {v: NEW.v}) END"
        )
        statements = [
            ("CREATE (:Config {on: true})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {v: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Seen") == 4
        assert batched.engine.batch_stats["batched_activations"] >= 5

    def test_self_interfering_exists_predicate_reverifies(self):
        # NOT EXISTS {(m:Marker)} is true only until the first firing
        # creates the Marker; reverification must catch the flip.
        trigger = (
            "CREATE TRIGGER FirstOnly AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN NOT EXISTS {(m:Marker)} "
            "BEGIN CREATE (:Marker) END"
        )
        statements = [("UNWIND range(1, 4) AS i CREATE (:Item {v: i})", None)]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Marker") == 1
        assert batched.engine.batch_stats["reverified_activations"] > 0

    def test_exists_with_transition_label_stays_sequential(self):
        # (x:NEW) needs the per-activation virtual label, which the shared
        # witness pass cannot model.
        trigger = (
            "CREATE TRIGGER VL AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN EXISTS {(x:NEW)} "
            "BEGIN CREATE (:Tagged) END"
        )
        statements = [("UNWIND range(1, 3) AS i CREATE (:Item {v: i})", None)]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Tagged") == 3
        assert batched.engine.batch_stats["batched_activations"] == 0

    def test_exists_predicate_independent_create_skips_reverification(self):
        # The created label cannot witness the EXISTS pattern, so the
        # footprint analysis keeps every verdict.
        trigger = (
            "CREATE TRIGGER Note AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN EXISTS {(c:Config {on: true})} "
            "BEGIN CREATE (:Noted {v: NEW.v}) END"
        )
        statements = [
            ("CREATE (:Config {on: true})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Item {v: i})", None),
        ]
        _, batched = run_pair([trigger], statements)
        assert batched.graph.count_nodes_with_label("Noted") == 4
        assert batched.engine.batch_stats["reverified_activations"] == 0


# ---------------------------------------------------------------------------
# condition errors mid-batch
# ---------------------------------------------------------------------------


class TestConditionErrors:
    def test_partial_firings_before_condition_error_match(self):
        # Sequential evaluation fires the activations *before* the one
        # whose condition errors, and those firings stay on the audit log
        # after the transaction rolls back.  The batched engine must
        # reproduce that, not fail the whole batch up front.
        trigger = (
            "CREATE TRIGGER Cmp AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END"
        )
        outcomes = []
        for batched in (False, True):
            session = GraphSession(
                clock=CLOCK, batched_triggers=batched, incremental_triggers=False
            )
            session.create_trigger(trigger)
            session.run("CREATE (:Threshold {cutoff: 1})")
            with pytest.raises(Exception, match="cannot compare"):
                session.run(
                    "CREATE (:Reading {value: 5}), (:Reading {value: 6}), "
                    "(:Reading {value: 'oops'}), (:Reading {value: 7})"
                )
            outcomes.append(
                (session.firing_log(), graph_to_dict(session.graph))
            )
        assert outcomes[0] == outcomes[1]
        per_activation_log = outcomes[0][0]
        # the two in-range activations before the error did fire
        assert len(per_activation_log) == 2
        assert all("executed" in line for line in per_activation_log)


# ---------------------------------------------------------------------------
# randomized trigger sets over randomized workloads
# ---------------------------------------------------------------------------

#: Trigger templates covering every evaluation route: plain predicates
#: (fast path), EXISTS conditions, batchable invariant and correlated
#: query conditions, aggregating (non-batchable) conditions, FOR ALL set
#: granularity, self-interfering actions, and cascading re-activation.
TRIGGER_TEMPLATES = [
    "CREATE TRIGGER TPred AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN NEW.value > 2 BEGIN CREATE (:AlertP {value: NEW.value}) END",
    "CREATE TRIGGER TInvariant AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag {enabled: true}) BEGIN CREATE (:AlertI) END",
    "CREATE TRIGGER TCorrelated AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag) WHERE NEW.value > f.cutoff "
    "BEGIN CREATE (:AlertC {value: NEW.value}) END",
    "CREATE TRIGGER TAggregate AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (n:X) WITH count(n) AS c WHERE c > 3 "
    "BEGIN CREATE (:AlertA) END",
    "CREATE TRIGGER TSelf AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (c:Counter) WHERE c.count < 3 "
    "BEGIN MATCH (c:Counter) SET c.count = c.count + 1 END",
    "CREATE TRIGGER TCascade AFTER CREATE ON 'AlertC' FOR EACH NODE "
    "BEGIN CREATE (:Audit) END",
    "CREATE TRIGGER TAll AFTER CREATE ON 'X' FOR ALL NODES "
    "WHEN MATCH (pn:NEWNODES) WHERE pn.value > 1 "
    "BEGIN CREATE (:AlertS) END",
    "CREATE TRIGGER TExists AFTER CREATE ON 'Y' FOR EACH NODE "
    "WHEN EXISTS (NEW)-[:L]-(:X) BEGIN CREATE (:AlertE) END",
    "CREATE TRIGGER TDelete AFTER DELETE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag) WHERE OLD.value = f.cutoff "
    "BEGIN CREATE (:AlertD {value: OLD.value}) END",
]

#: Workload statement templates, parameterized by one small integer.
STATEMENT_TEMPLATES = [
    lambda v: (f"UNWIND range(1, {v % 6 + 1}) AS i CREATE (:X {{value: i}})", None),
    lambda v: ("CREATE (:X {value: $v})", {"v": v}),
    lambda v: ("CREATE (:Flag {enabled: true, cutoff: $c})", {"c": v % 4}),
    lambda v: ("CREATE (:Counter {count: 0})", None),
    lambda v: (
        "MATCH (x:X {value: $v}) CREATE (:Y {value: $v})-[:L]->(x)",
        {"v": v % 4 + 1},
    ),
    lambda v: ("MATCH (x:X) WHERE x.value = $v DETACH DELETE x", {"v": v % 4 + 1}),
    lambda v: ("MATCH (f:Flag) SET f.cutoff = $c", {"c": v % 5}),
    lambda v: (f"UNWIND range(1, {v % 4 + 2}) AS i CREATE (:Y {{value: i}})", None),
]

trigger_subsets = st.lists(
    st.integers(min_value=0, max_value=len(TRIGGER_TEMPLATES) - 1),
    min_size=1,
    max_size=5,
    unique=True,
)
workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(STATEMENT_TEMPLATES) - 1),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=8,
)


class TestRandomizedDifferential:
    @given(trigger_indexes=trigger_subsets, workload=workloads)
    @settings(max_examples=100, deadline=None)
    def test_batched_engine_matches_per_activation_engine(
        self, trigger_indexes, workload
    ):
        triggers = [TRIGGER_TEMPLATES[i] for i in sorted(trigger_indexes)]
        statements = [STATEMENT_TEMPLATES[kind](value) for kind, value in workload]
        run_pair(triggers, statements)
