"""Incremental vs batched vs sequential trigger evaluation: 3-way differential.

Three :class:`~repro.triggers.session.GraphSession` instances differing
only in their evaluation tiers must be observationally identical: same
firing order, same per-trigger execution counts, same alerts, same final
graph state — on view-eligible condition suites, on demotion paths
(conditions outside the compiled footprint), on mid-stream index DDL
(epoch bumps force view rebuilds), on mid-stream trigger install/drop
(registry-version pruning), and on randomized delta streams over
randomized trigger sets.  The incremental sessions additionally assert
that the incremental tier actually engaged, so the equivalences are not
vacuous.
"""

from __future__ import annotations

import datetime as _dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import graph_to_dict
from repro.triggers import GraphSession

CLOCK = lambda: _dt.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731 - deterministic

#: The three engine configurations under test, in demotion-ladder order.
CONFIGS = (
    {"batched_triggers": False, "incremental_triggers": False},  # sequential
    {"batched_triggers": True, "incremental_triggers": False},  # batched
    {"batched_triggers": True, "incremental_triggers": True},  # incremental
)


def run_triple(triggers, workload, **session_kwargs):
    """Run triggers+workload through all three engines and compare.

    ``workload`` items are either ``(query, parameters)`` pairs or
    callables taking the session — the latter model out-of-band events
    (index DDL, trigger install/drop) at a fixed stream position.
    Returns the three sessions (sequential, batched, incremental).
    """
    sessions = []
    for config in CONFIGS:
        session = GraphSession(clock=CLOCK, **config, **session_kwargs)
        for trigger in triggers:
            session.create_trigger(trigger)
        for step in workload:
            if callable(step):
                step(session)
            else:
                query, parameters = step
                session.run(query, parameters)
        sessions.append(session)
    sequential, batched, incremental = sessions
    assert_equivalent(sequential, batched)
    assert_equivalent(sequential, incremental)
    return sequential, batched, incremental


def assert_equivalent(reference: GraphSession, candidate: GraphSession) -> None:
    assert reference.firing_log() == candidate.firing_log()
    assert reference.engine.execution_counts() == candidate.engine.execution_counts()
    assert reference.alerts() == candidate.alerts()
    assert graph_to_dict(reference.graph) == graph_to_dict(candidate.graph)


# ---------------------------------------------------------------------------
# view-eligible trigger suites
# ---------------------------------------------------------------------------


class TestThreeWayEquivalence:
    def test_correlated_condition_runs_incrementally(self):
        trigger = (
            "CREATE TRIGGER Escalate AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END"
        )
        workload = [
            ("CREATE (:Threshold {cutoff: 3})", None),
            ("UNWIND range(1, 8) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        assert incremental.graph.count_nodes_with_label("Spike") == 5
        stats = incremental.engine.incremental_stats
        assert stats["incremental_activations"] >= 8

    def test_invariant_condition_reuses_the_cached_product(self):
        trigger = (
            "CREATE TRIGGER Gate AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (f:Flag {enabled: true}) WHERE f.level > 1 "
            "BEGIN CREATE (:Passed {value: NEW.value}) END"
        )
        workload = [
            ("CREATE (:Flag {enabled: true, level: 3})", None),
            ("UNWIND range(1, 6) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        view = incremental.engine.views.view("Gate")
        assert view is not None and view.invariant
        assert view.stats["product_reuses"] > 0

    def test_multi_clause_join_condition(self):
        trigger = (
            "CREATE TRIGGER Pair AFTER CREATE ON 'Event' FOR EACH NODE "
            "WHEN MATCH (a:Lo) MATCH (b:Hi) WHERE a.v < NEW.value AND NEW.value < b.v "
            "BEGIN CREATE (:InRange {value: NEW.value}) END"
        )
        workload = [
            ("CREATE (:Lo {v: 2}), (:Hi {v: 6})", None),
            ("UNWIND range(1, 8) AS i CREATE (:Event {value: i})", None),
            # growing the alpha memories mid-stream must fold into the view
            ("CREATE (:Lo {v: 0})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Event {value: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        view = incremental.engine.views.view("Pair")
        assert view is not None
        assert view.stats["deltas_applied"] > 0

    def test_self_interfering_view_sees_its_own_writes(self):
        # The action mutates the very nodes the view filters on; the store
        # listener must fold each firing in before the next activation.
        trigger = (
            "CREATE TRIGGER Drain AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (g:Gauge) WHERE g.level > 0 "
            "BEGIN MATCH (g:Gauge) SET g.level = g.level - 1 END"
        )
        workload = [
            ("CREATE (:Gauge {level: 2})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {value: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        [gauge] = incremental.graph.nodes_with_label("Gauge")
        assert gauge.properties["level"] == 0

    def test_condition_error_surfaces_at_the_same_activation(self):
        trigger = (
            "CREATE TRIGGER Cmp AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END"
        )
        outcomes = []
        for config in CONFIGS:
            session = GraphSession(clock=CLOCK, **config)
            session.create_trigger(trigger)
            session.run("CREATE (:Threshold {cutoff: 1})")
            with pytest.raises(Exception, match="cannot compare"):
                session.run(
                    "CREATE (:Reading {value: 5}), (:Reading {value: 6}), "
                    "(:Reading {value: 'oops'}), (:Reading {value: 7})"
                )
            outcomes.append((session.firing_log(), graph_to_dict(session.graph)))
        assert outcomes[0] == outcomes[1] == outcomes[2]
        assert len(outcomes[0][0]) == 2  # the two pre-error firings stay logged


# ---------------------------------------------------------------------------
# demotion paths: conditions outside the compiled footprint
# ---------------------------------------------------------------------------


class TestDemotionLadder:
    def test_relationship_pattern_demotes_to_batched(self):
        trigger = (
            "CREATE TRIGGER Linked AFTER CREATE ON 'Y' FOR EACH NODE "
            "WHEN MATCH (a:X)-[:L]->(b:Z) WHERE a.v > 0 "
            "BEGIN CREATE (:AlertL) END"
        )
        workload = [
            ("CREATE (:X {v: 1})-[:L]->(:Z)", None),
            ("UNWIND range(1, 4) AS i CREATE (:Y {value: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        report = incremental.explain_triggers()["Linked"]
        assert "batched" in report["tiers"]
        assert "incremental" not in report["tiers"]
        assert report["ineligible"]
        assert incremental.engine.incremental_stats["incremental_activations"] == 0

    def test_aggregating_condition_demotes_to_batched(self):
        trigger = (
            "CREATE TRIGGER Cap AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (a:Alarm) WITH count(a) AS c WHERE c < 2 "
            "BEGIN CREATE (:Alarm) END"
        )
        workload = [("UNWIND range(1, 5) AS i CREATE (:Item {v: i})", None)]
        _, _, incremental = run_triple([trigger], workload)
        assert incremental.graph.count_nodes_with_label("Alarm") == 2
        report = incremental.explain_triggers()["Cap"]
        assert "batched" in report["tiers"]
        assert report["demotions"]

    def test_unlabelled_pattern_demotes(self):
        trigger = (
            "CREATE TRIGGER Any AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (n) WHERE n.special = true "
            "BEGIN CREATE (:Found) END"
        )
        workload = [
            ("CREATE (:Weird {special: true})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Item {v: i})", None),
        ]
        _, _, incremental = run_triple([trigger], workload)
        report = incremental.explain_triggers()["Any"]
        assert "incremental" not in report["tiers"]

    def test_mixed_suite_splits_across_tiers(self):
        triggers = [
            "CREATE TRIGGER V1 AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (f:Flag) WHERE NEW.v > f.cutoff "
            "BEGIN CREATE (:A1 {v: NEW.v}) END",
            "CREATE TRIGGER B1 AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN MATCH (n:Item) WITH count(n) AS c WHERE c > 2 "
            "BEGIN CREATE (:A2) END",
            "CREATE TRIGGER P1 AFTER CREATE ON 'Item' FOR EACH NODE "
            "WHEN NEW.v > 2 BEGIN CREATE (:A3 {v: NEW.v}) END",
        ]
        workload = [
            ("CREATE (:Flag {cutoff: 1})", None),
            ("UNWIND range(1, 5) AS i CREATE (:Item {v: i})", None),
        ]
        _, _, incremental = run_triple(triggers, workload)
        report = incremental.explain_triggers()
        assert "incremental" in report["V1"]["tiers"]
        assert "batched" in report["B1"]["tiers"]
        assert "predicate" in report["P1"]["tiers"]


# ---------------------------------------------------------------------------
# mid-stream DDL and trigger install/drop
# ---------------------------------------------------------------------------


def create_index(label: str, prop: str):
    def apply(session: GraphSession) -> None:
        session.graph.create_property_index(label, prop)

    return apply


def install(trigger: str):
    def apply(session: GraphSession) -> None:
        session.create_trigger(trigger)

    return apply


def drop(name: str):
    def apply(session: GraphSession) -> None:
        session.drop_trigger(name)

    return apply


ESCALATE = (
    "CREATE TRIGGER Escalate AFTER CREATE ON 'Reading' FOR EACH NODE "
    "WHEN MATCH (t:Threshold) WHERE NEW.value > t.cutoff "
    "BEGIN CREATE (:Spike {value: NEW.value}) END"
)


class TestMidStreamChanges:
    def test_index_ddl_mid_stream_rebuilds_the_view(self):
        workload = [
            ("CREATE (:Threshold {cutoff: 2})", None),
            ("UNWIND range(1, 4) AS i CREATE (:Reading {value: i})", None),
            create_index("Threshold", "cutoff"),
            ("UNWIND range(1, 4) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([ESCALATE], workload)
        view = incremental.engine.views.view("Escalate")
        assert view is not None
        # one initial build plus one epoch-forced rebuild after the DDL
        assert view.stats["rebuilds"] >= 2
        assert incremental.graph.count_nodes_with_label("Spike") == 4

    def test_trigger_installed_mid_stream(self):
        second = (
            "CREATE TRIGGER Tally AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value = t.cutoff "
            "BEGIN CREATE (:Exact {value: NEW.value}) END"
        )
        workload = [
            ("CREATE (:Threshold {cutoff: 2})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
            install(second),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([ESCALATE], workload)
        assert incremental.graph.count_nodes_with_label("Exact") == 1
        assert incremental.engine.views.view("Tally") is not None

    def test_trigger_dropped_mid_stream_prunes_its_view(self):
        workload = [
            ("CREATE (:Threshold {cutoff: 0})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
            drop("Escalate"),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([ESCALATE], workload)
        assert incremental.engine.views.view("Escalate") is None
        assert incremental.graph.count_nodes_with_label("Spike") == 3

    def test_reinstalled_trigger_gets_a_fresh_view(self):
        flipped = (
            "CREATE TRIGGER Escalate AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (t:Threshold) WHERE NEW.value < t.cutoff "
            "BEGIN CREATE (:Dip {value: NEW.value}) END"
        )
        workload = [
            ("CREATE (:Threshold {cutoff: 2})", None),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
            drop("Escalate"),
            install(flipped),
            ("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})", None),
        ]
        _, _, incremental = run_triple([ESCALATE], workload)
        assert incremental.graph.count_nodes_with_label("Spike") == 1
        assert incremental.graph.count_nodes_with_label("Dip") == 1
        view = incremental.engine.views.view("Escalate")
        assert view is not None  # the *new* definition's view


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_summary_carries_the_evaluation_report(self):
        session = GraphSession(clock=CLOCK)
        session.create_trigger(ESCALATE)
        session.run("CREATE (:Threshold {cutoff: 1})")
        summary = session.run(
            "UNWIND range(1, 4) AS i CREATE (:Reading {value: i})"
        ).consume()
        report = summary.trigger_evaluation
        assert report is not None
        assert report["Escalate"]["tiers"].get("incremental", 0) >= 1
        assert report["Escalate"]["view"]["evaluations"] >= 4
        assert summary.as_dict()["trigger_evaluation"] == report
        assert session.explain_triggers() == report

    def test_demotion_reasons_are_reported(self):
        trigger = (
            "CREATE TRIGGER Rel AFTER CREATE ON 'Y' FOR EACH NODE "
            "WHEN MATCH (a:X)-[:L]->(b:Z) BEGIN CREATE (:AlertL) END"
        )
        session = GraphSession(clock=CLOCK)
        session.create_trigger(trigger)
        session.run("UNWIND range(1, 3) AS i CREATE (:Y {v: i})")
        report = session.explain_triggers()["Rel"]
        assert report["ineligible"]
        assert sum(report["demotions"].values()) >= 1

    def test_disabled_tier_reports_no_views(self):
        session = GraphSession(clock=CLOCK, incremental_triggers=False)
        session.create_trigger(ESCALATE)
        session.run("CREATE (:Threshold {cutoff: 1})")
        session.run("UNWIND range(1, 3) AS i CREATE (:Reading {value: i})")
        assert session.engine.views is None
        report = session.explain_triggers()["Escalate"]
        assert "incremental" not in report["tiers"]


# ---------------------------------------------------------------------------
# randomized trigger sets over randomized delta streams
# ---------------------------------------------------------------------------

#: Templates biased toward the incremental tier's footprint (single-node
#: labelled patterns, literal inline props, transition-correlated WHEREs)
#: but covering every demotion path too: aggregates, relationships,
#: unlabelled patterns, EXISTS predicates, self-interference, FOR ALL.
TRIGGER_TEMPLATES = [
    "CREATE TRIGGER TCorr AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag) WHERE NEW.value > f.cutoff "
    "BEGIN CREATE (:AlertC {value: NEW.value}) END",
    "CREATE TRIGGER TInv AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag {enabled: true}) BEGIN CREATE (:AlertI) END",
    "CREATE TRIGGER TJoin AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (a:Flag) MATCH (c:Counter) WHERE a.cutoff < c.count "
    "BEGIN CREATE (:AlertJ) END",
    "CREATE TRIGGER TSelf AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (c:Counter) WHERE c.count < 3 "
    "BEGIN MATCH (c:Counter) SET c.count = c.count + 1 END",
    "CREATE TRIGGER TAgg AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN MATCH (n:X) WITH count(n) AS c WHERE c > 3 "
    "BEGIN CREATE (:AlertA) END",
    "CREATE TRIGGER TRel AFTER CREATE ON 'Y' FOR EACH NODE "
    "WHEN MATCH (y:Y)-[:L]->(x:X) WHERE x.value > 1 "
    "BEGIN CREATE (:AlertR) END",
    "CREATE TRIGGER TExists AFTER CREATE ON 'Y' FOR EACH NODE "
    "WHEN EXISTS (NEW)-[:L]-(:X) BEGIN CREATE (:AlertE) END",
    "CREATE TRIGGER TPred AFTER CREATE ON 'X' FOR EACH NODE "
    "WHEN NEW.value > 2 BEGIN CREATE (:AlertP {value: NEW.value}) END",
    "CREATE TRIGGER TDel AFTER DELETE ON 'X' FOR EACH NODE "
    "WHEN MATCH (f:Flag) WHERE OLD.value = f.cutoff "
    "BEGIN CREATE (:AlertD {value: OLD.value}) END",
    "CREATE TRIGGER TAll AFTER CREATE ON 'X' FOR ALL NODES "
    "WHEN MATCH (pn:NEWNODES) WHERE pn.value > 1 "
    "BEGIN CREATE (:AlertS) END",
]

#: Workload steps, parameterized by one small integer.  The last two are
#: out-of-band events: index DDL and dropping/reinstalling a trigger.
STATEMENT_TEMPLATES = [
    lambda v: (f"UNWIND range(1, {v % 6 + 1}) AS i CREATE (:X {{value: i}})", None),
    lambda v: ("CREATE (:X {value: $v})", {"v": v}),
    lambda v: ("CREATE (:Flag {enabled: true, cutoff: $c})", {"c": v % 4}),
    lambda v: ("CREATE (:Counter {count: 0})", None),
    lambda v: (
        "MATCH (x:X {value: $v}) CREATE (:Y {value: $v})-[:L]->(x)",
        {"v": v % 4 + 1},
    ),
    lambda v: ("MATCH (x:X) WHERE x.value = $v DETACH DELETE x", {"v": v % 4 + 1}),
    lambda v: ("MATCH (f:Flag) SET f.cutoff = $c", {"c": v % 5}),
    lambda v: ("MATCH (f:Flag) WHERE f.cutoff = $c REMOVE f.enabled", {"c": v % 5}),
]


def _ddl_step(v):
    label, prop = [("X", "value"), ("Flag", "cutoff"), ("Counter", "count")][v % 3]

    def apply(session: GraphSession) -> None:
        if (label, prop) not in session.graph.property_indexes():
            session.graph.create_property_index(label, prop)

    return apply


def _drop_step(v):
    def apply(session: GraphSession) -> None:
        for name in list(session.engine.registry.names()):
            if hash(name) % 3 == v % 3:
                session.drop_trigger(name)

    return apply


WORKLOAD_BUILDERS = STATEMENT_TEMPLATES + [_ddl_step, _drop_step]

trigger_subsets = st.lists(
    st.integers(min_value=0, max_value=len(TRIGGER_TEMPLATES) - 1),
    min_size=1,
    max_size=5,
    unique=True,
)
workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(WORKLOAD_BUILDERS) - 1),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=8,
)


class TestRandomizedDifferential:
    @given(trigger_indexes=trigger_subsets, workload=workloads)
    @settings(max_examples=80, deadline=None)
    def test_all_three_tiers_agree(self, trigger_indexes, workload):
        triggers = [TRIGGER_TEMPLATES[i] for i in sorted(trigger_indexes)]
        steps = [WORKLOAD_BUILDERS[kind](value) for kind, value in workload]
        run_triple(triggers, steps)
