"""The GraphDatabase facade: named-graph catalog and driver-style sessions."""

from __future__ import annotations

import pytest

import repro
from repro import GraphDatabase, GraphSession, connect, default_database, reset_default_database
from repro.cypher.result import QueryResult
from repro.graph import PropertyGraph


@pytest.fixture(autouse=True)
def clean_default_database():
    reset_default_database()
    yield
    reset_default_database()


class TestCatalog:
    def test_graph_creates_on_demand_and_caches(self):
        db = GraphDatabase()
        covid = db.graph("covid")
        assert isinstance(covid, GraphSession)
        assert db.graph("covid") is covid
        assert db.session("covid") is covid
        assert db.list_graphs() == ["covid"]

    def test_create_graph_rejects_duplicates(self):
        db = GraphDatabase()
        db.create_graph("g")
        with pytest.raises(ValueError):
            db.create_graph("g")

    def test_create_graph_adopts_existing_store(self):
        store = PropertyGraph()
        store.create_node(["Seed"], {})
        db = GraphDatabase()
        session = db.create_graph("seeded", graph=store)
        assert session.graph is store
        assert session.run("MATCH (s:Seed) RETURN count(*) AS n").single("n") == 1

    def test_drop_graph(self):
        db = GraphDatabase()
        db.graph("a")
        db.graph("b")
        db.drop_graph("a")
        assert db.list_graphs() == ["b"]
        with pytest.raises(KeyError):
            db.drop_graph("a")

    def test_containment_and_iteration(self):
        db = GraphDatabase()
        db.graph("x")
        assert "x" in db
        assert "y" not in db
        assert len(db) == 1
        assert list(db) == ["x"]

    def test_graphs_are_isolated(self):
        db = GraphDatabase()
        db.graph("a").run("CREATE (:OnlyInA)")
        assert db.graph("b").graph.count_nodes_with_label("OnlyInA") == 0
        assert db.graph("a").graph.count_nodes_with_label("OnlyInA") == 1

    def test_triggers_live_with_the_catalog_graph(self):
        db = GraphDatabase()
        db.graph("monitored").create_trigger(
            "CREATE TRIGGER T AFTER CREATE ON 'Patient' FOR EACH NODE "
            "BEGIN CREATE (:Alert) END"
        )
        # the same catalog entry later: trigger still installed
        db.graph("monitored").run("CREATE (:Patient {ssn: 'P1'})")
        assert db.graph("monitored").graph.count_nodes_with_label("Alert") == 1


class TestDefaultDatabase:
    def test_connect_is_a_one_liner(self):
        session = connect()
        session.run("CREATE (:Hello)")
        assert connect() is session
        assert repro.DEFAULT_GRAPH_NAME in default_database()

    def test_connect_named_graph(self):
        covid = connect("covid")
        covid.run("CREATE (:Hospital {name: 'Sacco'})")
        assert connect("covid").graph.count_nodes_with_label("Hospital") == 1
        assert default_database().list_graphs() == ["covid"]

    def test_reset_default_database(self):
        connect("temp").run("CREATE (:T)")
        reset_default_database()
        assert default_database().list_graphs() == []


class TestDriverResultFlow:
    def test_streaming_records_and_summary(self):
        session = GraphDatabase().graph()
        session.run("CREATE (:Person {name: 'Ada'})")
        session.run("CREATE (:Person {name: 'Grace'})")
        result = session.run("MATCH (p:Person) RETURN p.name AS name")
        assert result.keys() == ["name"]
        first = result.peek()
        assert first["name"] == "Ada"
        names = [record["name"] for record in result]
        assert names == ["Ada", "Grace"]
        summary = result.consume()
        assert summary.query == "MATCH (p:Person) RETURN p.name AS name"
        assert "LabelScan(Person)" in summary.plan

    def test_write_summary_counters(self):
        session = GraphDatabase().graph()
        summary = session.run("CREATE (:A {x: 1})-[:R]->(:B)").consume()
        counters = summary.counters.as_dict()
        assert counters["nodes_created"] == 2
        assert counters["relationships_created"] == 1
        assert counters["properties_set"] == 1
        assert summary.counters.contains_updates()

    def test_deprecated_eager_shim_still_works(self):
        """The old QueryResult surface keeps working on streamed results."""
        session = GraphDatabase().graph()
        session.run("CREATE (:Person {name: 'Ada'})")
        result = session.run("MATCH (p:Person) RETURN p.name AS name")
        assert result.rows == [{"name": "Ada"}]
        assert result.values("name") == ["Ada"]
        assert len(result) == 1
        assert bool(result)
        assert "Ada" in result.to_table()
        # and the eager QueryResult class itself remains importable/usable
        eager = QueryResult(columns=["x"], rows=[{"x": 1}])
        assert eager.single("x") == 1
