"""Integration tests: the paper's Section 6 scenario end to end.

These tests exercise the full stack (store + transactions + Cypher +
schema + triggers + datasets) the way the running example does, and the
cross-route equivalence the Section 5 translations claim.
"""

import datetime

import pytest

from repro.compat import ApocEmulator, MemgraphEmulator, translate_to_apoc, translate_to_memgraph
from repro.datasets import (
    Cov2kProfile,
    designation_change_stream,
    generate_cov2k,
    icu_admission_stream,
    icu_patient_increase,
    icu_patient_move,
    icu_patients_over_threshold,
    lineage_assignment_stream,
    move_to_near_hospital,
    mutation_discovery_stream,
    new_critical_lineage,
    new_critical_mutation,
    replay,
    who_designation_change,
)
from repro.schema import validate_graph
from repro.triggers import GraphSession, parse_trigger

CLOCK = lambda: datetime.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731


@pytest.fixture
def covid_session():
    dataset = generate_cov2k(Cov2kProfile(patients=40, sequences=30, mutations=15))
    session = GraphSession(graph=dataset.graph, schema=dataset.schema, clock=CLOCK)
    # The generated population already contains the Sacco/Meyer hospitals of
    # the running example; pin their ICU capacities so the thresholds used in
    # the tests below are meaningful.
    session.run("MATCH (h:Hospital {name: 'Sacco'}) SET h.icuBeds = 6")
    session.run("MATCH (h:Hospital {name: 'Meyer'}) SET h.icuBeds = 20")
    return session


class TestSection62EndToEnd:
    def test_simple_reaction_triggers_raise_alerts(self, covid_session):
        covid_session.create_trigger(new_critical_mutation())
        covid_session.create_trigger(new_critical_lineage())
        covid_session.create_trigger(who_designation_change())
        replay(covid_session, mutation_discovery_stream(count=20, critical_fraction=0.5))
        replay(covid_session, lineage_assignment_stream(sequences=10, critical_every=3))
        replay(covid_session, designation_change_stream(changes=3))
        alerts = covid_session.alerts()
        descriptions = {a.get("desc") for a in alerts}
        assert "New critical mutation" in descriptions
        assert "New critical lineage" in descriptions
        assert "New Designation for an existing Lineage" in descriptions
        # alerts carry the domain context the paper's triggers attach
        assert any("mutation" in a for a in alerts)
        assert any("lineage" in a for a in alerts)

    def test_threshold_and_increase_triggers(self, covid_session):
        covid_session.create_trigger(icu_patients_over_threshold(threshold=5))
        covid_session.create_trigger(icu_patient_increase(fraction=0.5))
        replay(covid_session, icu_admission_stream(admissions=8, batch_size=4))
        descriptions = [a.get("desc") for a in covid_session.alerts()]
        assert any("more than 5" in d for d in descriptions)
        assert any("increased" in d for d in descriptions)

    def test_relocation_moves_patients_and_terminates(self, covid_session):
        covid_session.create_trigger(icu_patient_move(source="Sacco", destination="Meyer"))
        # overload Sacco: its capacity is 6, admit 8 in two batches
        replay(covid_session, icu_admission_stream(admissions=8, batch_size=4, hospital="Sacco"))
        occupancy = {
            row["hospital"]: row["patients"]
            for row in covid_session.run(
                "MATCH (p:IcuPatient {prognosis:'severe'})-[:TreatedAt]->(h:Hospital) "
                "RETURN h.name AS hospital, count(p) AS patients"
            )
        }
        assert occupancy.get("Meyer", 0) > 0  # some patients were relocated
        report = covid_session.analyse_termination()
        assert report.guaranteed_termination

    def test_move_to_near_hospital_item_granularity(self, covid_session):
        covid_session.create_trigger(move_to_near_hospital(region="Lombardy"))
        replay(covid_session, icu_admission_stream(admissions=10, batch_size=1, hospital="Sacco"))
        sacco_load = covid_session.run(
            "MATCH (p:IcuPatient {prognosis:'severe'})-[:TreatedAt]->(h:Hospital {name:'Sacco'}) "
            "RETURN count(p) AS n"
        ).single("n")
        # the trigger keeps Sacco's load bounded around its capacity
        sacco = covid_session.graph.find_nodes("Hospital", {"name": "Sacco"})[0]
        assert sacco_load <= sacco.properties["icuBeds"] + 1

    def test_schema_still_valid_after_reactive_processing(self, covid_session):
        covid_session.create_trigger(new_critical_mutation())
        replay(covid_session, mutation_discovery_stream(count=10, critical_fraction=0.5))
        violations = validate_graph(covid_session.graph, covid_session.schema)
        # Alert is an OPEN type, Region/Hospital additions conform; no violations
        assert violations == []


class TestTransactionalBehaviour:
    def test_oncommit_abort_discards_workload_statement(self, covid_session):
        covid_session.create_trigger("""
            CREATE TRIGGER NoAnonymousPatients ONCOMMIT CREATE ON 'Patient' FOR EACH NODE
            WHEN NEW.ssn IS NULL
            BEGIN CALL db.abort('patients must carry an ssn') END
        """)
        before = covid_session.graph.count_nodes_with_label("Patient")
        from repro.tx import TransactionAborted

        with pytest.raises(TransactionAborted):
            covid_session.run("CREATE (:Patient {name: 'anonymous'})")
        assert covid_session.graph.count_nodes_with_label("Patient") == before

    def test_multi_statement_transaction_with_commit_triggers(self, covid_session):
        covid_session.create_trigger("""
            CREATE TRIGGER AdmissionSummary ONCOMMIT CREATE ON 'IcuPatient' FOR ALL NODES
            BEGIN CREATE (:Alert {desc: 'admissions in transaction', count: size(NEWNODES)}) END
        """)
        with covid_session.transaction():
            for index in range(3):
                covid_session.run(
                    "MATCH (h:Hospital {name: 'Sacco'}) "
                    "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: $ssn})-[:TreatedAt]->(h)",
                    {"ssn": f"TX{index}"},
                )
        summaries = [a for a in covid_session.alerts() if a.get("desc") == "admissions in transaction"]
        assert len(summaries) == 1
        assert summaries[0]["count"] == 3


class TestCrossRouteEquivalence:
    def test_same_alerts_across_native_apoc_memgraph(self):
        trigger_text = new_critical_mutation()
        workload = mutation_discovery_stream(count=25, critical_fraction=0.4)

        session = GraphSession(clock=CLOCK)
        session.create_trigger(trigger_text)
        replay(session, workload)

        apoc = ApocEmulator(clock=CLOCK)
        apoc.run(translate_to_apoc(parse_trigger(trigger_text)).call_text)
        for statement in workload:
            apoc.run(statement.query, statement.parameters)

        memgraph = MemgraphEmulator(clock=CLOCK)
        memgraph.run(translate_to_memgraph(parse_trigger(trigger_text)).ddl)
        for statement in workload:
            memgraph.run(statement.query, statement.parameters)

        native = len(session.alerts())
        assert native > 0
        assert apoc.graph.count_nodes_with_label("Alert") == native
        assert memgraph.graph.count_nodes_with_label("Alert") == native

    def test_cascading_is_the_differentiator(self):
        """The native engine cascades; the emulated APOC route does not (Section 5.1)."""
        chain = [
            "CREATE TRIGGER Raise AFTER CREATE ON 'Mutation' FOR EACH NODE "
            "BEGIN CREATE (:Alert {desc: 'mutation'}) END",
            "CREATE TRIGGER Escalate AFTER CREATE ON 'Alert' FOR EACH NODE "
            "BEGIN CREATE (:Escalation) END",
        ]
        session = GraphSession(clock=CLOCK)
        for text in chain:
            session.create_trigger(text)
        session.run("CREATE (:Mutation {name: 'X'})")
        assert session.graph.count_nodes_with_label("Escalation") == 1

        apoc = ApocEmulator(clock=CLOCK)
        for text in chain:
            apoc.run(translate_to_apoc(parse_trigger(text)).call_text)
        apoc.run("CREATE (:Mutation {name: 'X'})")
        assert apoc.graph.count_nodes_with_label("Alert") == 1
        assert apoc.graph.count_nodes_with_label("Escalation") == 0
