"""Multi-threaded stress suite for thread-safe sessions (N writers × M readers).

Every test synchronises with barriers and events — never sleeps — so the
suite is deterministic: it can fail only if the locking protocol is wrong,
not because a scheduler was slow.
"""

from __future__ import annotations

import threading

import pytest

from repro.database import GraphDatabase
from repro.triggers.session import GraphSession
from repro.tx.errors import LockTimeoutError

WRITERS = 4
READERS = 4
ROUNDS = 25


def run_all(workers):
    """Start every worker behind one barrier; join and re-raise failures."""
    errors: list[BaseException] = []

    def wrap(fn):
        def target():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return target

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
        assert not thread.is_alive(), "worker thread hung (probable deadlock)"
    if errors:
        raise errors[0]


class TestLostUpdates:
    def test_concurrent_increments_are_all_applied(self):
        session = GraphSession(thread_safe=True)
        session.run("CREATE (:Counter {value: 0})")
        start = threading.Barrier(WRITERS, timeout=60)

        def writer():
            start.wait()
            for _ in range(ROUNDS):
                session.run("MATCH (c:Counter) SET c.value = c.value + 1")

        run_all([writer] * WRITERS)
        assert session.run("MATCH (c:Counter) RETURN c.value AS v").single() == (
            WRITERS * ROUNDS
        )

    def test_final_state_equals_serial_schedule(self):
        """The concurrent interleaving commutes to the same state a serial
        run produces: same node count, same counter total."""
        concurrent = GraphSession(thread_safe=True)
        concurrent.run("CREATE (:Total {value: 0})")
        start = threading.Barrier(WRITERS, timeout=60)

        def writer(index):
            def work():
                start.wait()
                for round_number in range(ROUNDS):
                    with concurrent.transaction():
                        concurrent.run(
                            "CREATE (:Item {writer: $w, round: $r})",
                            {"w": index, "r": round_number},
                        )
                        concurrent.run("MATCH (t:Total) SET t.value = t.value + 1")

            return work

        run_all([writer(i) for i in range(WRITERS)])

        serial = GraphSession()
        serial.run("CREATE (:Total {value: 0})")
        for index in range(WRITERS):
            for round_number in range(ROUNDS):
                with serial.transaction():
                    serial.run(
                        "CREATE (:Item {writer: $w, round: $r})",
                        {"w": index, "r": round_number},
                    )
                    serial.run("MATCH (t:Total) SET t.value = t.value + 1")

        for probe in (
            "MATCH (i:Item) RETURN count(*) AS c",
            "MATCH (t:Total) RETURN t.value AS v",
        ):
            assert concurrent.run(probe).single() == serial.run(probe).single(), probe


class TestTornReads:
    def test_snapshot_readers_never_observe_partial_writes(self):
        """Writers keep ``a`` and ``b`` equal inside each transaction; a
        snapshot reader must never see them differ."""
        session = GraphSession(thread_safe=True)
        session.run("CREATE (:Pair {a: 0, b: 0})")
        start = threading.Barrier(WRITERS + READERS, timeout=60)
        stop = threading.Event()
        observed: list[tuple[int, int]] = []
        observed_lock = threading.Lock()

        def writer():
            start.wait()
            for _ in range(ROUNDS):
                # Two separate SETs inside one transaction: a torn read
                # would catch the state between them.
                with session.transaction():
                    session.run("MATCH (p:Pair) SET p.a = p.a + 1")
                    session.run("MATCH (p:Pair) SET p.b = p.b + 1")
            stop.set()

        def reader():
            start.wait()
            local: list[tuple[int, int]] = []
            while not stop.is_set():
                record = session.run("MATCH (p:Pair) RETURN p.a AS a, p.b AS b").peek()
                local.append((record["a"], record["b"]))
            with observed_lock:
                observed.extend(local)

        run_all([writer] * WRITERS + [reader] * READERS)
        torn = [pair for pair in observed if pair[0] != pair[1]]
        assert torn == [], f"torn reads observed: {torn[:5]}"
        assert observed, "readers never ran"

    def test_streamed_snapshot_is_internally_consistent(self):
        """A multi-record read drained under the shared lock sees one
        generation of the data, not a mix."""
        session = GraphSession(thread_safe=True)
        with session.transaction():
            for index in range(10):
                session.run("CREATE (:Cell {slot: $s, gen: 0})", {"s": index})
        start = threading.Barrier(2, timeout=60)
        stop = threading.Event()

        def writer():
            start.wait()
            for generation in range(1, ROUNDS + 1):
                session.run("MATCH (c:Cell) SET c.gen = $g", {"g": generation})
            stop.set()

        def reader():
            start.wait()
            while not stop.is_set():
                generations = session.run("MATCH (c:Cell) RETURN c.gen AS g").values("g")
                assert len(set(generations)) == 1, f"mixed generations: {generations}"

        run_all([writer, reader])


class TestTriggersUnderConcurrency:
    def test_audit_count_matches_item_count(self):
        session = GraphSession(thread_safe=True)
        session.create_trigger("""
            CREATE TRIGGER AuditItems
            AFTER CREATE ON 'Item'
            FOR EACH NODE
            BEGIN
              CREATE (:Audit {writer: NEW.writer})
            END
        """)
        start = threading.Barrier(WRITERS, timeout=60)

        def writer(index):
            def work():
                start.wait()
                for round_number in range(ROUNDS):
                    session.run(
                        "CREATE (:Item {writer: $w, round: $r})",
                        {"w": index, "r": round_number},
                    )

            return work

        run_all([writer(i) for i in range(WRITERS)])
        items = session.run("MATCH (i:Item) RETURN count(*) AS c").single()
        audits = session.run("MATCH (a:Audit) RETURN count(*) AS c").single()
        assert items == WRITERS * ROUNDS
        assert audits == items

    def test_concurrent_trigger_ddl_and_writes(self):
        """Installing/dropping triggers while writers run never corrupts the
        registry and every audit row matches an item that fired it."""
        session = GraphSession(thread_safe=True)
        start = threading.Barrier(WRITERS + 1, timeout=60)

        def ddl_worker():
            start.wait()
            for round_number in range(ROUNDS):
                name = f"T{round_number}"
                session.create_trigger(f"""
                    CREATE TRIGGER {name}
                    AFTER CREATE ON 'Item'
                    FOR EACH NODE
                    BEGIN
                      CREATE (:Audit {{via: '{name}'}})
                    END
                """)
                session.drop_trigger(name)

        def writer(index):
            def work():
                start.wait()
                for round_number in range(ROUNDS):
                    session.run(
                        "CREATE (:Item {writer: $w, round: $r})",
                        {"w": index, "r": round_number},
                    )

            return work

        run_all([ddl_worker] + [writer(i) for i in range(WRITERS)])
        assert len(session.registry) == 0
        items = session.run("MATCH (i:Item) RETURN count(*) AS c").single()
        audits = session.run("MATCH (a:Audit) RETURN count(*) AS c").single()
        assert items == WRITERS * ROUNDS
        # Each audit was created by a trigger that was installed at that
        # moment; the count can range from 0 to items but the graph must be
        # structurally sound either way.
        assert 0 <= audits <= items


class TestDatabaseLevelConcurrency:
    def test_sessions_on_different_graphs_do_not_serialise(self):
        """Writers on distinct graphs proceed in parallel: with per-graph
        locks, a holder on graph A cannot block graph B."""
        db = GraphDatabase(thread_safe=True)
        inside = threading.Barrier(2, timeout=60)

        def worker(name):
            def work():
                with db.lock_manager.write(name):
                    # Rendezvous while both write locks are held: impossible
                    # if the two graphs shared one lock.
                    inside.wait()

            return work

        run_all([worker("a"), worker("b")])

    def test_drop_graph_waits_for_inflight_writers(self):
        db = GraphDatabase(thread_safe=True)
        session = db.graph("doomed")
        in_tx = threading.Event()
        proceed = threading.Event()
        dropped = threading.Event()

        def writer():
            with session.transaction():
                session.run("CREATE (:Node)")
                in_tx.set()
                assert proceed.wait(60)

        def dropper():
            assert in_tx.wait(60)
            proceed.set()
            db.drop_graph("doomed")
            dropped.set()

        run_all([writer, dropper])
        assert dropped.is_set()
        assert not db.has_graph("doomed")

    def test_lock_timeout_surfaces_as_typed_error(self):
        db = GraphDatabase(thread_safe=True, lock_timeout=0.02)
        session = db.graph("busy")
        holding = threading.Event()
        release = threading.Event()
        timed_out: list[LockTimeoutError] = []

        def holder():
            with db.lock_manager.write("busy"):
                holding.set()
                assert release.wait(60)

        def contender():
            assert holding.wait(60)
            try:
                session.run("CREATE (:Blocked)")
            except LockTimeoutError as exc:
                timed_out.append(exc)
            finally:
                release.set()

        run_all([holder, contender])
        (error,) = timed_out
        assert error.graph == "busy"
        assert error.mode == "write"

    def test_readers_proceed_in_parallel(self):
        """Every snapshot reader is inside the shared lock at the same time.

        The instrumented ``acquire_read`` parks each reader at a barrier
        *while holding the lock*: if readers excluded each other, the ones
        queued behind the first could never reach the barrier and it would
        break (timeout) instead of releasing all four together.
        """
        db = GraphDatabase(thread_safe=True)
        session = db.graph("shared")
        session.run("CREATE (:Data {x: 1})")
        lock = db.lock_manager.lock("shared")
        inside = threading.Barrier(READERS, timeout=30)

        original_acquire = lock.acquire_read

        def rendezvous_acquire(timeout=None):
            original_acquire(timeout)
            inside.wait()  # held: all READERS are in the lock together

        lock.acquire_read = rendezvous_acquire

        def reader():
            assert session.run("MATCH (d:Data) RETURN d.x AS x").values("x") == [1]

        run_all([reader] * READERS)


class TestSingleThreadedDefaultUnchanged:
    def test_default_session_is_not_thread_safe(self):
        assert GraphSession().thread_safe is False
        assert GraphSession(thread_safe=True).thread_safe is True
        assert GraphDatabase().thread_safe is False

    def test_default_session_still_streams_lazily(self):
        session = GraphSession()
        for index in range(5):
            session.run("CREATE (:N {i: $i})", {"i": index})
        result = session.run("MATCH (n:N) RETURN n.i AS i")
        assert not result.consumed  # lazy: nothing drained yet
        assert [r["i"] for r in result] == [0, 1, 2, 3, 4]

    def test_thread_safe_read_is_pre_drained_snapshot(self):
        session = GraphSession(thread_safe=True)
        session.run("CREATE (:N {i: 0})")
        result = session.run("MATCH (n:N) RETURN n.i AS i")
        # Already buffered: mutating afterwards cannot change the result.
        session.run("MATCH (n:N) SET n.i = 99")
        assert result.values("i") == [0]


@pytest.mark.parametrize("workers", [2, 8])
def test_stress_mixed_workload_no_deadlock(workers):
    """Readers, writers, transactions and DDL interleaved — must terminate."""
    session = GraphSession(thread_safe=True)
    session.run("CREATE (:Counter {value: 0})")
    start = threading.Barrier(workers, timeout=60)

    def worker(index):
        def work():
            start.wait()
            for round_number in range(10):
                kind = (index + round_number) % 4
                if kind == 0:
                    session.run("MATCH (c:Counter) SET c.value = c.value + 1")
                elif kind == 1:
                    session.run("MATCH (c:Counter) RETURN c.value AS v").single()
                elif kind == 2:
                    with session.transaction():
                        session.run("CREATE (:Scratch {w: $w})", {"w": index})
                        session.run("MATCH (c:Counter) SET c.value = c.value + 1")
                else:
                    session.explain("MATCH (c:Counter) RETURN c")

            return None

        return work

    run_all([worker(i) for i in range(workers)])
    value = session.run("MATCH (c:Counter) RETURN c.value AS v").single()
    expected = sum(
        1
        for index in range(workers)
        for round_number in range(10)
        if (index + round_number) % 4 in (0, 2)
    )
    assert value == expected
