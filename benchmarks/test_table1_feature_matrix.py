"""T1 — regenerate Table 1 (reactive support across graph databases)."""

from repro.bench import table1_feature_matrix


def test_table1_feature_matrix(benchmark, assert_result):
    result = benchmark(table1_feature_matrix)
    assert_result(result, "T1", min_rows=15)
    rows = {row["System"]: row for row in result.rows}
    # the paper's headline finding: only Neo4j and Memgraph offer graph triggers
    assert [name for name, row in rows.items() if row["Tr-G"] == "✓"] == ["Neo4j", "Memgraph"]
    # mixed relational systems only have relational triggers
    assert all(rows[name]["Tr-R"] == "✓" for name in ("Oracle Graph Database", "Virtuoso", "AgensGraph"))
    # three systems offer no reactive support at all
    bare = [name for name, row in rows.items()
            if row["Tr-G"] == "-" and row["Tr-R"] == "-" and row["Ev-L"] == "-"]
    assert sorted(bare) == ["GraphDB", "Nebula Graph", "TigerGraph"]
