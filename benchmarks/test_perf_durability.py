"""P9 (added) — durability cost: WAL fsync policies vs in-memory commits.

The acceptance bar is correctness, not speed: both durable routes must
recover — after close + reopen — a graph identical to the in-memory
survivor's (the experiment itself asserts the fingerprints match).
Throughput ratios are environment-dependent (an fsync on tmpfs is nearly
free), so they are reported in the result's notes rather than asserted.
"""

from repro.bench import perf_durability


def test_perf_durability(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_durability(commits=150, group_commit_size=16),
        rounds=2,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P9", min_rows=3)
    by_route = {row["route"]: row for row in result.rows}
    assert set(by_route) == {
        "in-memory",
        "durable fsync-per-commit",
        "durable group-commit",
    }
    for row in result.rows:
        assert row["commits"] == 150
        assert row["commits_per_sec"] > 0
    assert any("recovered a graph identical" in note for note in result.notes)
