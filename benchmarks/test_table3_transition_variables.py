"""T3 — OLD/NEW transition variable availability per event kind (Table 3)."""

from repro.bench import table3_transition_variables


def test_table3_transition_variables(benchmark, assert_result):
    result = benchmark(table3_transition_variables)
    assert_result(result, "T3", min_rows=10)
    rows = {row["event"]: row for row in result.rows}
    # Table 3: creations expose NEW only, deletions OLD only, sets both, removes OLD only
    assert rows["Nodes Create"]["new_available"] and not rows["Nodes Create"]["old_available"]
    assert rows["Nodes Delete"]["old_available"] and not rows["Nodes Delete"]["new_available"]
    assert rows["Relationships Create"]["new_available"]
    assert rows["Relationships Delete"]["old_available"]
    assert rows["Node Properties Set"]["old_available"] and rows["Node Properties Set"]["new_available"]
    assert rows["Node Properties Remove"]["old_available"]
    assert not rows["Node Properties Remove"]["new_available"]
    assert rows["Rel Properties Set"]["new_available"]
    # every probed event kind had at least one activation in the sample transaction
    assert all(row["activations"] >= 1 for row in result.rows)
