"""S63 — the worked translations reproduce the native engine's behaviour."""

from repro.bench import section63_apoc_worked_translations


def test_section63_worked_translations(benchmark, assert_result):
    result = benchmark(section63_apoc_worked_translations)
    assert_result(result, "S63", min_rows=3)
    # the headline claim of Section 5/6.3: the same reactive behaviour can be
    # obtained through APOC and Memgraph triggers via syntax-directed translation
    assert all(row["equivalent"] for row in result.rows)
    assert all(row["native_alerts"] > 0 for row in result.rows)
