"""P2 (added) — cascading depth cost and static termination verdicts."""

from repro.bench import perf_cascading


def test_perf_cascading(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_cascading(depths=(1, 2, 4, 8)), rounds=1, iterations=1
    )
    assert_result(result, "P2", min_rows=4)
    rows = {row["chain_length"]: row for row in result.rows}
    # each trigger in the chain fires exactly once and the cascade reaches the
    # expected depth (depth d fires at cascade level d-1)
    for depth in (1, 2, 4, 8):
        assert rows[depth]["triggers_fired"] == depth
        assert rows[depth]["max_depth_reached"] == depth - 1
        assert rows[depth]["termination_guaranteed"] is True
    # cost grows with depth
    assert rows[8]["seconds"] >= rows[1]["seconds"]
