"""F4/F5 — the CoV2K PG-Schema and a conforming synthetic population."""

from repro.bench import figure45_cov2k_schema


def test_figure45_cov2k_schema(benchmark, assert_result):
    result = benchmark(figure45_cov2k_schema)
    assert_result(result, "F45", min_rows=15)
    node_types = {row["name"] for row in result.rows if row["kind"] == "node type"}
    edge_types = {row["name"] for row in result.rows if row["kind"] == "edge type"}
    # Figure 4's entity and relationship types are all present
    assert {"Mutation", "Sequence", "Lineage", "Patient", "HospitalizedPatient",
            "IcuPatient", "Hospital", "Region", "Laboratory", "CriticalEffect"} <= node_types
    assert {"Risk", "FoundIn", "BelongsTo", "TreatedAt", "LocatedIn", "ConnectedTo",
            "HasSample", "SequencedAt"} <= edge_types
    # the type hierarchy of Figure 4 is reflected
    hierarchy = {row["name"]: row["supertype"] for row in result.rows if row["kind"] == "node type"}
    assert hierarchy["HospitalizedPatient"] == "Patient"
    assert hierarchy["IcuPatient"] == "HospitalizedPatient"
    # the generated population conforms to the schema
    assert any("schema violations in generated population: 0" in note for note in result.notes)
