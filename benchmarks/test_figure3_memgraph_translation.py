"""F3 — syntax-directed translation from PG-Triggers to Memgraph triggers."""

from repro.bench import figure3_memgraph_translation


def test_figure3_memgraph_translation(benchmark, assert_result):
    result = benchmark(figure3_memgraph_translation)
    assert_result(result, "F3", min_rows=11)
    rows = {row["trigger"]: row for row in result.rows}
    assert rows["NewCriticalMutation"]["source_variable"] == "createdVertices"
    assert rows["CreateRel"]["source_variable"] == "createdEdges"
    assert rows["SetNodeProp"]["source_variable"] == "setVertexProperties"
    assert rows["DeleteNode"]["on_clause"] == "ON () DELETE"
    assert rows["DeleteRel"]["on_clause"] == "ON --> DELETE"
    # Figure 3's shape: every translation expresses the condition as a CASE
    assert all(row["uses_case"] for row in result.rows)
    assert all(row["phase"] in ("AFTER COMMIT", "BEFORE COMMIT") for row in result.rows)
