"""P1 (added) — trigger matching overhead vs number of installed triggers."""

from repro.bench import perf_trigger_overhead


def test_perf_trigger_overhead(benchmark, assert_result):
    # One unmeasured warmup round fills the global parse+plan cache, so the
    # measured rounds reflect steady-state trigger processing cost.
    result = benchmark.pedantic(
        lambda: perf_trigger_overhead(trigger_counts=(0, 4, 16, 64), statements=60),
        rounds=3,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P1", min_rows=4)
    by_count = {row["installed_triggers"]: row for row in result.rows}
    # more installed triggers cost more per statement, but the growth stays
    # roughly linear (not explosive) because matching is label-indexed
    assert by_count[64]["mean_ms_per_statement"] >= by_count[0]["mean_ms_per_statement"]
    assert by_count[64]["mean_ms_per_statement"] < 200 * max(
        by_count[0]["mean_ms_per_statement"], 0.001
    )
