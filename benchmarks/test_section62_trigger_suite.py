"""S62 — the paper's Section 6.2 trigger suite over the COVID workloads."""

from repro.bench import section62_trigger_suite


def test_section62_trigger_suite(benchmark, assert_result):
    result = benchmark(section62_trigger_suite)
    assert_result(result, "S62", min_rows=6)
    rows = {row["trigger"]: row for row in result.rows}
    # the three simple reaction triggers of Section 6.2.1 fire
    assert rows["NewCriticalMutation"]["executed"] > 0
    assert rows["NewCriticalLineage"]["executed"] > 0
    assert rows["WhoDesignationChange"]["executed"] > 0
    # harmless mutations / non-critical lineages are suppressed by the conditions
    assert rows["NewCriticalMutation"]["suppressed"] > 0
    assert rows["NewCriticalLineage"]["suppressed"] > 0
    # the set-granularity ICU triggers both evaluate; the increase trigger fires
    assert rows["IcuPatientIncrease"]["executed"] > 0
    assert rows["IcuPatientMove"]["executed"] > 0
    # the installed suite is statically terminating
    assert any("termination guaranteed" in note for note in result.notes)
    # alerts were produced overall
    assert any("total alerts produced" in note for note in result.notes)
