"""T4 — the Memgraph predefined variables of Table 4 are fully populated."""

from repro.bench import table4_memgraph_variables


def test_table4_memgraph_variables(benchmark, assert_result):
    result = benchmark(table4_memgraph_variables)
    assert_result(result, "T4", min_rows=15)
    assert len(result.rows) == 15  # the fifteen variables of Table 4
    assert all(row["entries_in_sample"] >= 1 for row in result.rows)
    names = result.column("variable")
    for expected in ("createdVertices", "updatedObjects", "removedEdgeProperties"):
        assert expected in names
