"""F1 — the Figure 1 grammar accepts and round-trips the paper's triggers."""

from repro.bench import figure1_grammar


def test_figure1_grammar(benchmark, assert_result):
    result = benchmark(figure1_grammar)
    assert_result(result, "F1", min_rows=7)
    # every paper trigger parses and survives an unparse/reparse round trip
    assert all(result.column("round_trip_stable"))
    by_name = {row["trigger"]: row for row in result.rows}
    assert by_name["NewCriticalMutation"]["event"] == "CREATE"
    assert by_name["NewCriticalLineage"]["item"] == "RELATIONSHIP"
    assert by_name["WhoDesignationChange"]["target"] == "Lineage.whoDesignation"
    assert by_name["IcuPatientsOverThreshold"]["granularity"] == "ALL"
    assert by_name["MoveToNearHospital"]["granularity"] == "EACH"
