"""P8 (added) — the physical operator layer vs its pre-refactor baselines.

The acceptance bar: over a ≥50k-node synthetic graph, at least one of the
three physical-operator comparisons must be ≥5x — and the two robust ones
(range seek vs label scan, hash join vs nested loop) are each held to that
bar individually, with identical rows in every comparison.  The top-k
ratio is reported only: its win is bounded by the per-row projection cost
both routes pay.
"""

from repro.bench import perf_physical_operators


def test_perf_physical_operators(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_physical_operators(nodes=50_000, join_side=400, limit=10, repeats=2),
        rounds=2,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P8", min_rows=6)
    by_route = {row["route"]: row for row in result.rows}

    scan = by_route["label scan (no ordered index)"]
    seek = by_route["IndexRangeSeek (ordered index)"]
    assert seek["rows"] == scan["rows"] == 20
    assert seek["best_ms"] * 5 <= scan["best_ms"], (
        f"range seek {seek['best_ms']:.3f}ms vs scan {scan['best_ms']:.3f}ms"
    )

    nested = by_route["nested loop (join_ordering=False)"]
    hashed = by_route["HashJoin"]
    assert hashed["rows"] == nested["rows"] > 0
    assert hashed["best_ms"] * 5 <= nested["best_ms"], (
        f"hash join {hashed['best_ms']:.3f}ms vs nested loop {nested['best_ms']:.3f}ms"
    )

    sort = by_route["eager full sort"]
    topk = by_route["streaming TopK"]
    assert topk["rows"] == sort["rows"] == 10
    # top-k must at least never regress; its speedup is workload-bound
    assert topk["best_ms"] <= sort["best_ms"] * 1.2, (
        f"top-k {topk['best_ms']:.3f}ms vs full sort {sort['best_ms']:.3f}ms"
    )
