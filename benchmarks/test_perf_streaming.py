"""P6 (added) — streaming vs eager ``MATCH … LIMIT`` point-query latency.

The acceptance bar for the streaming pipeline: over a ≥50k-node synthetic
graph, a MATCH-with-LIMIT point query must be at least 10x faster through
the streaming executor than through the eager (materialise-everything)
baseline, with identical rows.
"""

from repro.bench import perf_streaming_limit


def test_perf_streaming_limit(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_streaming_limit(nodes=50_000, limit=10, repeats=3),
        rounds=2,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P6", min_rows=2)
    by_route = {row["route"]: row for row in result.rows}
    eager = by_route["eager (materialise every clause)"]
    streaming = by_route["streaming pipeline"]
    assert streaming["rows"] == eager["rows"] == 10
    # the tentpole acceptance criterion: ≥10x faster when streaming
    assert streaming["best_ms"] * 10 <= eager["best_ms"], (
        f"streaming {streaming['best_ms']:.3f}ms vs eager {eager['best_ms']:.3f}ms"
    )
