"""P13 (added) — incremental trigger views vs batched: firehose delta streams.

The acceptance bar for the incremental tier: over a 50k-node delta
stream split into 250 statements flowing through 12 installed triggers
(ten invariant config gates over a 10k-entry catalog, one correlated
Escalate, one cascade), the delta-maintained condition views must
sustain at least 5x the batched engine's deltas/second while producing
the identical Spike/Audit populations (the experiment itself asserts
the equivalence).

On top of the absolute bar, a regression gate compares the measured
rates against the committed ``triggers_baseline.json`` with a 2x slack
for CI timing noise.  The full result table is dumped to
``BENCH_triggers_firehose.json`` (uploaded as a CI artifact) so a
failing gate shows both routes' rates and the views' reuse counters.
"""

import json
from pathlib import Path

from repro.bench import perf_incremental_triggers

BASELINE_PATH = Path(__file__).with_name("triggers_baseline.json")
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_triggers_firehose.json"


def test_perf_incremental_trigger_evaluation(benchmark, assert_result):
    baseline = json.loads(BASELINE_PATH.read_text())
    result = benchmark.pedantic(
        lambda: perf_incremental_triggers(
            nodes=baseline["nodes"],
            statements=baseline["statements"],
            catalog=baseline["catalog"],
            gate_triggers=baseline["gate_triggers"],
        ),
        rounds=1,
        warmup_rounds=0,
        iterations=1,
    )
    ARTIFACT_PATH.write_text(
        json.dumps({"rows": result.rows, "notes": result.notes}, indent=2) + "\n"
    )

    assert_result(result, "P13", min_rows=2)
    by_route = {row["route"]: row for row in result.rows}
    batched = by_route["batched"]
    incremental = by_route["incremental"]

    # Identical trigger semantics on both routes.
    assert incremental["spikes"] == batched["spikes"] == 5
    assert incremental["audits"] == batched["audits"] == 5
    assert incremental["triggers"] == batched["triggers"] == 12

    # The incremental tier actually carried the load: every activation of
    # the eleven query-condition triggers went through a view, and the
    # invariant gate products were reused across deltas.
    assert incremental["incremental_activations"] == 11 * baseline["nodes"]
    assert incremental["views"] == 11
    assert incremental["product_reuses"] > 10 * (baseline["nodes"] - baseline["statements"])

    # The tentpole acceptance criterion: ≥5x sustained deltas/second.
    speedup = incremental["deltas_per_sec"] / batched["deltas_per_sec"]
    assert speedup >= 5.0, (
        f"incremental {incremental['deltas_per_sec']:.0f} deltas/s vs "
        f"batched {batched['deltas_per_sec']:.0f} deltas/s ({speedup:.1f}x < 5x, "
        f"see {ARTIFACT_PATH.name})"
    )

    # Regression gate vs the committed baseline, with a wide berth for CI
    # timing noise (both sides are wall-clock rates).
    assert speedup >= baseline["speedup"] / 2.0, (
        f"speedup regressed: {speedup:.1f}x vs baseline {baseline['speedup']:.1f}x "
        f"(see {ARTIFACT_PATH.name})"
    )
    assert incremental["deltas_per_sec"] >= baseline["incremental_deltas_per_sec"] / 2.0, (
        f"incremental rate regressed: {incremental['deltas_per_sec']:.0f}/s vs "
        f"baseline {baseline['incremental_deltas_per_sec']:.0f}/s "
        f"(see {ARTIFACT_PATH.name})"
    )
