"""P5 (added) — index-aware planning and the global parse+plan cache."""

from repro.bench import perf_plan_cache


def test_perf_plan_cache(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_plan_cache(nodes=1000, queries=100),
        rounds=3,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P5", min_rows=2)
    by_route = {row["route"]: row for row in result.rows}
    scan = by_route["label scan (no index)"]
    indexed = by_route["property index"]
    # the planner must actually choose the PropertyIndex access path …
    assert "IndexSeek(Patient.mrn = $mrn)" in indexed["plan"]
    assert "IndexSeek" not in scan["plan"]
    # … and the indexed route must beat the label scan decisively
    assert indexed["seconds"] < scan["seconds"] / 5
