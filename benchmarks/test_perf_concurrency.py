"""P10 (added) — concurrent HTTP throughput through the server front door.

The acceptance bar: aggregate *snapshot read* throughput must scale at
least 2x from 1 to 8 concurrent keep-alive clients (one client is bound by
the request round-trip; eight keep the event-loop/executor pipeline full).
Write throughput is reported, not asserted — writes serialise on the
exclusive per-graph lock, so flat is the expected shape.

The 2x bar needs hardware concurrency to be physically reachable: on a
single-CPU host the clients and the server timeshare one core, so every
microsecond of request-handling CPU serialises and aggregate scaling is
capped at the idle fraction of the round-trip (measured ≈1.3x here).  When
fewer than two CPUs are available we assert a no-collapse bound instead
(8 clients must not be slower than ~0.7x of 1 client) and the experiment's
note records the measured factor and the CPU count.
"""

import os

from repro.bench import perf_concurrency


def _available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_perf_concurrency(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_concurrency(client_counts=(1, 2, 4, 8), requests_per_client=40,
                                 write_requests_per_client=10),
        rounds=1,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P10", min_rows=8)
    reads = {row["clients"]: row["qps"] for row in result.rows if row["mode"] == "read"}
    writes = {row["clients"]: row["qps"] for row in result.rows if row["mode"] == "write"}
    assert set(reads) == {1, 2, 4, 8}
    assert set(writes) == {1, 2, 4, 8}
    for qps in list(reads.values()) + list(writes.values()):
        assert qps > 0
    if _available_cpus() >= 2:
        # The tentpole acceptance criterion: ≥2x aggregate read scaling 1→8.
        assert reads[8] >= 2.0 * reads[1], (
            f"snapshot reads did not scale: 1 client {reads[1]} qps, "
            f"8 clients {reads[8]} qps"
        )
    else:
        # Single-CPU host: scaling is physically capped (see module docstring);
        # just require that concurrency does not *collapse* throughput.
        assert reads[8] >= 0.7 * reads[1], (
            f"snapshot reads collapsed under concurrency: 1 client {reads[1]} qps, "
            f"8 clients {reads[8]} qps"
        )
    assert any("audit trigger" in note for note in result.notes)
