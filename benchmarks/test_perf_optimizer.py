"""P12 (added) — optimizer torture: q-error and plan-regret regression gate.

The acceptance bar: over the seeded randomized workload of
:mod:`repro.bench.torture` (skewed value distributions, composite
predicates, connected joins, narrow hop windows), the median q-error of
EXPLAIN's ``est~rows`` against the rows actually produced must stay ≤ 2,
the equi-depth histogram must beat the one-third range heuristic on the
same skewed range queries, and at least one narrow-hop query must route
through the accelerator's DFS walk.

On top of the absolute bars, a regression gate compares the run against
the committed ``optimizer_baseline.json``: the estimation aggregates
(deterministic for a fixed seed) must not drift past a 1.25x slack, and
the timing-based median regret gets a generous 2x slack for CI noise.
The full scored workload is dumped to ``BENCH_optimizer_qerror.json``
(uploaded as a CI artifact) so a failing gate names the exact queries
that regressed.
"""

import json
from pathlib import Path

from repro.bench import perf_optimizer
from repro.bench.torture import run_torture

BASELINE_PATH = Path(__file__).with_name("optimizer_baseline.json")
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_optimizer_qerror.json"


def test_perf_optimizer(benchmark, assert_result):
    baseline = json.loads(BASELINE_PATH.read_text())
    report = benchmark.pedantic(
        lambda: run_torture(
            seed=baseline["seed"], cases_per_kind=baseline["cases_per_kind"], repeats=2
        ),
        rounds=2,
        warmup_rounds=1,
        iterations=1,
    )
    ARTIFACT_PATH.write_text(json.dumps(report.to_dict(), indent=2) + "\n")

    # perf_optimizer scores the report and enforces the absolute bars:
    # median q-error ≤ 2, histogram < one-third heuristic, dfs_walks > 0.
    result = perf_optimizer(report=report)
    assert_result(result, "P12", min_rows=7)
    assert {row["kind"] for row in result.rows} >= {
        "equality",
        "range",
        "empty-range",
        "composite",
        "residual-where",
        "join",
        "narrow-hop",
    }

    # Regression gate vs the committed baseline.  Estimation quality is
    # deterministic for a fixed seed, so the slack only needs to absorb
    # actual-rows jitter from timing-based tie-breaks (there is none
    # today, but keep the gate from being byte-exact).
    median = report.median_q_error()
    assert median <= baseline["median_q_error"] * 1.25, (
        f"median q-error regressed: {median:.2f} vs "
        f"baseline {baseline['median_q_error']:.2f} (see {ARTIFACT_PATH.name})"
    )
    assert report.max_q_error() <= baseline["max_q_error"] * 1.25, (
        f"worst q-error regressed: {report.max_q_error():.2f} vs "
        f"baseline {baseline['max_q_error']:.2f} (see {ARTIFACT_PATH.name})"
    )
    assert report.histogram_range_q_error <= baseline["histogram_range_q_error"] * 1.25, (
        f"histogram range estimates regressed: {report.histogram_range_q_error:.2f} "
        f"vs baseline {baseline['histogram_range_q_error']:.2f}"
    )
    # Plan regret is wall-clock based; give CI noise a wide berth while
    # still catching a planner that starts picking dominated plans.
    regret = report.median_regret()
    assert regret <= max(baseline["median_regret"] * 2.0, 2.0), (
        f"median plan regret regressed: {regret:.2f} vs "
        f"baseline {baseline['median_regret']:.2f} (see {ARTIFACT_PATH.name})"
    )
