"""P7 (added) — batched vs per-activation trigger condition evaluation.

The acceptance bar for batched trigger evaluation: over a 50k-node delta
cascading through an N-trigger set, the batched engine must be at least
5x faster than the per-activation engine while producing the identical
Spike/Audit populations (the experiment itself asserts the equivalence).
"""

from repro.bench import perf_batched_triggers


def test_perf_batched_trigger_evaluation(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_batched_triggers(nodes=50_000, gate_triggers=2, configs=96),
        rounds=1,
        warmup_rounds=0,
        iterations=1,
    )
    assert_result(result, "P7", min_rows=2)
    by_route = {row["route"]: row for row in result.rows}
    per_activation = by_route["per-activation"]
    batched = by_route["batched"]
    # identical trigger semantics: same firings, same cascade output
    assert batched["spikes"] == per_activation["spikes"] == 5
    assert batched["audits"] == per_activation["audits"] == 5
    # the batched path actually ran (one batch per Reading-trigger, 50k each)
    assert batched["batched_activations"] == 3 * 50_000
    assert per_activation["batched_activations"] == 0
    # the tentpole acceptance criterion: ≥5x faster when batched
    assert batched["seconds"] * 5 <= per_activation["seconds"], (
        f"batched {batched['seconds']:.2f}s vs "
        f"per-activation {per_activation['seconds']:.2f}s"
    )
