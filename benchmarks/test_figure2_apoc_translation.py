"""F2 — syntax-directed translation from PG-Triggers to APOC triggers."""

from repro.bench import figure2_apoc_translation


def test_figure2_apoc_translation(benchmark, assert_result):
    result = benchmark(figure2_apoc_translation)
    assert_result(result, "F2", min_rows=11)
    rows = {row["trigger"]: row for row in result.rows}
    # Figure 2's worked case: node creation unwinds $createdNodes
    assert rows["NewCriticalMutation"]["unwind_parameter"] == "createdNodes"
    # all ten event kinds are covered and map to distinct metadata parameters
    assert rows["DeleteNode"]["unwind_parameter"] == "deletedNodes"
    assert rows["CreateRel"]["unwind_parameter"] == "createdRelationships"
    assert rows["SetNodeProp"]["unwind_parameter"] == "assignedNodeProperties"
    assert rows["RemoveRelProp"]["unwind_parameter"] == "removedRelProperties"
    assert rows["SetLabelOnNode"]["unwind_parameter"] == "assignedLabels"
    # every translation uses apoc.do.when and the afterAsync phase
    assert all(row["uses_do_when"] for row in result.rows)
    assert all(row["phase"] == "afterAsync" for row in result.rows)
