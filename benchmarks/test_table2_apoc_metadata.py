"""T2 — the APOC transition metadata of Table 2 is fully populated."""

from repro.bench import table2_apoc_metadata


def test_table2_apoc_metadata(benchmark, assert_result):
    result = benchmark(table2_apoc_metadata)
    assert_result(result, "T2", min_rows=10)
    # the ten metadata kinds of Table 2, each exercised by the sample transaction
    assert len(result.rows) == 10
    assert all(row["entries_in_sample"] >= 1 for row in result.rows)
    names = result.column("statement")
    assert "assignedNodeProperties" in names and "removedRelProperties" in names
