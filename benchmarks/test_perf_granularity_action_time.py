"""P3 (added) — FOR EACH vs FOR ALL and the action-time options."""

from repro.bench import perf_granularity_action_time


def test_perf_granularity_action_time(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_granularity_action_time(batch_sizes=(1, 10), admissions=30),
        rounds=1,
        iterations=1,
    )
    assert_result(result, "P3", min_rows=8)
    rows = {(row["batch_size"], row["configuration"]): row for row in result.rows}
    # FOR EACH produces one audit entry per admitted patient, FOR ALL one per statement
    assert rows[(10, "FOR EACH / AFTER")]["audit_entries"] == 30
    assert rows[(10, "FOR ALL / AFTER")]["audit_entries"] == 3
    # with batch size 1 the two granularities coincide
    assert rows[(1, "FOR EACH / AFTER")]["audit_entries"] == rows[(1, "FOR ALL / AFTER")]["audit_entries"]
    # ONCOMMIT and DETACHED produce the same effects as AFTER for this workload
    assert rows[(10, "FOR EACH / ONCOMMIT")]["audit_entries"] == 30
    assert rows[(10, "FOR EACH / DETACHED")]["audit_entries"] == 30
