"""P4 (added) — the same trigger and workload through all three execution routes."""

from repro.bench import perf_compat_routes


def test_perf_compat_routes(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_compat_routes(admissions=25), rounds=1, iterations=1
    )
    assert_result(result, "P4", min_rows=3)
    rows = {row["route"]: row for row in result.rows}
    alerts = {row["alerts"] for row in result.rows}
    # all three routes produce the same number of alerts on this workload
    assert len(alerts) == 1
    assert alerts.pop() > 0
    # only the native engine supports cascading (the paper's Section 5 finding)
    assert rows["PG-Trigger engine"]["cascading_supported"] is True
    assert rows["APOC emulation (afterAsync)"]["cascading_supported"] is False
    assert rows["Memgraph emulation (after commit)"]["cascading_supported"] is False
