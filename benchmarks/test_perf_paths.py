"""P11 (added) — path queries: reachability accelerator vs DFS, shortestPath.

The acceptance bar: over a 50k-node containment hierarchy, answering a
bound-pair ``(root)-[:PART_OF*]->(leaf)`` query through the reachability
index must be ≥5x faster than the DFS expansion route, with identical
rows.  The unbound subtree-enumeration ratio is reported only (both
routes touch every descendant), and the bidirectional-BFS shortestPath
must beat the naive enumerator.
"""

from repro.bench import perf_paths


def test_perf_paths(benchmark, assert_result):
    result = benchmark.pedantic(
        lambda: perf_paths(nodes=50_000, branching=3, repeats=2),
        rounds=2,
        warmup_rounds=1,
        iterations=1,
    )
    assert_result(result, "P11", min_rows=6)
    rows = {(row["route"], row["comparison"]): row for row in result.rows}

    dfs = rows[("VarLengthExpand (dfs)", "bound-pair reachability")]
    probe = rows[("ReachabilityIndex probe", "bound-pair reachability")]
    assert probe["rows"] == dfs["rows"] == 1
    assert probe["best_ms"] * 5 <= dfs["best_ms"], (
        f"reachability probe {probe['best_ms']:.3f}ms vs dfs {dfs['best_ms']:.3f}ms"
    )

    scan_dfs = rows[("VarLengthExpand (dfs)", "subtree enumeration")]
    scan_accel = rows[("ReachabilityIndex scan", "subtree enumeration")]
    assert scan_accel["rows"] == scan_dfs["rows"] > 0
    # interval scan must at least never regress; both routes are O(subtree)
    assert scan_accel["best_ms"] <= scan_dfs["best_ms"] * 1.2, (
        f"interval scan {scan_accel['best_ms']:.3f}ms vs dfs {scan_dfs['best_ms']:.3f}ms"
    )

    naive = rows[("naive enumeration", "shortestPath (bound pair)")]
    bfs = rows[("bidirectional BFS", "shortestPath (bound pair)")]
    assert bfs["rows"] == naive["rows"] == 1
    assert bfs["best_ms"] * 5 <= naive["best_ms"], (
        f"bidirectional BFS {bfs['best_ms']:.3f}ms vs naive {naive['best_ms']:.3f}ms"
    )
