"""Shared configuration for the benchmark suite.

Each benchmark regenerates one paper artifact (table/figure) or one added
performance experiment, asserts the qualitative "shape" the paper reports,
and times the regeneration with pytest-benchmark.
"""

import pytest


@pytest.fixture
def assert_result():
    """Common sanity checks for an ExperimentResult."""

    def check(result, expected_id, min_rows=1):
        assert result.experiment_id == expected_id
        assert len(result.rows) >= min_rows
        assert result.columns
        assert result.to_text()
        return result

    return check
